package petri

// Example returns the running example of the paper (Figure 1),
// reconstructed from the prose. The figure itself is not machine-readable;
// the reconstruction satisfies every fact the text states:
//
//   - places 1-7 and transitions i-vi, over peers P1 and P2;
//   - α(i) = b, φ(i) = P1, •i = {1,7}, i• = {2,3};
//   - transitions i, ii and v are the initially enabled set;
//   - firing i removes the marking of places 1, 7 and marks 2, 3;
//   - the configuration {i, iii, iv} (the shaded nodes of Figure 2) is a
//     diagnosis for (b,p1),(a,p2),(c,p1) and for (b,p1),(c,p1),(a,p2) but
//     not for (c,p1),(b,p1),(a,p2);
//   - the net is safe, cyclic (infinite unfolding), and the two peers
//     interact in both directions.
//
// Layout:
//
//	P1: places 1,2,3,4; transitions i(b): {1,7}->{2,3},
//	    ii(c): {4}->{5}, iii(c): {2}->{}
//	P2: places 5,6,7; transitions iv(a): {3}->{6},
//	    v(a): {7}->{6}, vi(b): {6}->{7}
//	M0 = {1, 4, 7}
func Example() *PetriNet {
	n := NewNet()
	const p1, p2 = Peer("p1"), Peer("p2")
	for _, id := range []NodeID{"1", "2", "3", "4"} {
		n.AddPlace(id, p1)
	}
	for _, id := range []NodeID{"5", "6", "7"} {
		n.AddPlace(id, p2)
	}
	n.AddTransition("i", p1, "b", []NodeID{"1", "7"}, []NodeID{"2", "3"})
	n.AddTransition("ii", p1, "c", []NodeID{"4"}, []NodeID{"5"})
	n.AddTransition("iii", p1, "c", []NodeID{"2"}, nil)
	n.AddTransition("iv", p2, "a", []NodeID{"3"}, []NodeID{"6"})
	n.AddTransition("v", p2, "a", []NodeID{"7"}, []NodeID{"6"})
	n.AddTransition("vi", p2, "b", []NodeID{"6"}, []NodeID{"7"})
	pn, err := New(n, NewMarking("1", "4", "7"))
	if err != nil {
		panic(err) // the example is static; failure is a programming error
	}
	return pn
}
