package petri

import "fmt"

// Pad2 returns a behaviorally equivalent net in which every transition has
// exactly two parent places — the shape the Section 4.1 Datalog encoding
// assumes ("we assume below that every transition node has exactly two
// parents"). A transition t with a single parent gains a private place
// pad.t, initially marked, that t both consumes and reproduces. In a safe
// net this preserves executions, alarms and configurations exactly: two
// instances of t are never concurrent (that would need two tokens on t's
// real parent), so the private place never constrains anything that was
// not already constrained.
//
// Transitions with more than two parents are rejected: the paper's
// encoding does not cover them and no silent transformation preserves
// their alarm semantics. Use nets with presets of size one or two for the
// Datalog pipeline.
func Pad2(pn *PetriNet) (*PetriNet, error) {
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		if len(t.Pre) > 2 {
			return nil, fmt.Errorf("petri: transition %q has %d parents; the Datalog encoding supports at most 2", tid, len(t.Pre))
		}
	}
	out := NewNet()
	for _, pid := range pn.Net.Places() {
		out.AddPlace(pid, pn.Net.Place(pid).Peer)
	}
	m0 := pn.M0.Clone()
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		pre := append([]NodeID(nil), t.Pre...)
		post := append([]NodeID(nil), t.Post...)
		if len(pre) == 1 {
			pad := NodeID("pad." + string(tid))
			out.AddPlace(pad, t.Peer)
			m0[pad] = true
			pre = append(pre, pad)
			post = append(post, pad)
		}
		out.AddTransition(tid, t.Peer, t.Alarm, pre, post)
	}
	return New(out, m0)
}

// IsTwoParent reports whether every transition of the net has exactly two
// parent places.
func IsTwoParent(pn *PetriNet) bool {
	for _, tid := range pn.Net.Transitions() {
		if len(pn.Net.Transition(tid).Pre) != 2 {
			return false
		}
	}
	return true
}

// PadPlace reports whether a place was introduced by Pad2.
func PadPlace(id NodeID) bool {
	return len(id) > 4 && id[:4] == "pad."
}
