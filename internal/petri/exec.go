package petri

import "math/rand"

// Firing records one transition firing during an execution.
type Firing struct {
	Trans NodeID
	Alarm Alarm
	Peer  Peer
}

// Execution is a firing sequence of the net (one interleaving of a run).
type Execution []Firing

// RandomExecution fires up to steps randomly chosen enabled transitions
// starting from M0 and returns the firing sequence and the final marking.
// It stops early at a dead marking. Deterministic for a given rng state.
func (pn *PetriNet) RandomExecution(rng *rand.Rand, steps int) (Execution, Marking) {
	m := pn.M0.Clone()
	var exec Execution
	for len(exec) < steps {
		enabled := pn.EnabledSet(m)
		if len(enabled) == 0 {
			break
		}
		t := enabled[rng.Intn(len(enabled))]
		next, err := pn.Fire(m, t)
		if err != nil {
			break // unsafe nets stop the run rather than corrupting it
		}
		tr := pn.Net.Transition(t)
		exec = append(exec, Firing{Trans: t, Alarm: tr.Alarm, Peer: tr.Peer})
		m = next
	}
	return exec, m
}

// ObservedAlarms projects the execution to the observable alarms of each
// peer, in firing order — what each peer sends to the supervisor. Silent
// transitions are dropped (the Section 4.4 hidden-transition extension).
func (e Execution) ObservedAlarms() map[Peer][]Alarm {
	out := make(map[Peer][]Alarm)
	for _, f := range e {
		if f.Alarm == Silent {
			continue
		}
		out[f.Peer] = append(out[f.Peer], f.Alarm)
	}
	return out
}

// Observation is one alarm as received by the supervisor: the symbol and
// the emitting peer (the paper's pair (a, p)).
type Observation struct {
	Alarm Alarm
	Peer  Peer
}

// Interleave merges the per-peer alarm streams into one supervisor
// sequence, preserving each peer's internal order but interleaving across
// peers at random — the asynchronous channel of Section 2. Deterministic
// for a given rng state.
func Interleave(rng *rand.Rand, perPeer map[Peer][]Alarm) []Observation {
	// Deterministic peer order regardless of map iteration.
	var peers []Peer
	for p := range perPeer {
		peers = append(peers, p)
	}
	for i := 1; i < len(peers); i++ {
		for j := i; j > 0 && peers[j] < peers[j-1]; j-- {
			peers[j], peers[j-1] = peers[j-1], peers[j]
		}
	}
	idx := make(map[Peer]int, len(peers))
	total := 0
	for _, p := range peers {
		total += len(perPeer[p])
	}
	out := make([]Observation, 0, total)
	for len(out) < total {
		// Pick a random peer that still has alarms to deliver.
		k := rng.Intn(total - len(out))
		for _, p := range peers {
			remaining := len(perPeer[p]) - idx[p]
			if k < remaining {
				out = append(out, Observation{Alarm: perPeer[p][idx[p]], Peer: p})
				idx[p]++
				break
			}
			k -= remaining
		}
	}
	return out
}
