package parser

import (
	"fmt"
	"strings"

	"repro/internal/alarm"
	"repro/internal/petri"
)

// Net parses the line-oriented Petri net format:
//
//	# comment
//	place <id> <peer>
//	trans <id> <peer> <alarm|_> : <pre place...> -> [<post place>...]
//	init <place>...
//
// An alarm of "_" marks a silent (hidden) transition. Example — the
// paper's running example:
//
//	place 1 p1
//	...
//	trans i p1 b : 1 7 -> 2 3
//	trans iii p1 c : 2 ->
//	init 1 4 7
func Net(src string) (*petri.PetriNet, error) {
	n := petri.NewNet()
	var init []petri.NodeID
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "place":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: place needs <id> <peer>", lineNo+1)
			}
			n.AddPlace(petri.NodeID(fields[1]), petri.Peer(fields[2]))
		case "trans":
			if len(fields) < 5 {
				return nil, fmt.Errorf("line %d: trans needs <id> <peer> <alarm> : <pre...> -> [post...]", lineNo+1)
			}
			id, peer := petri.NodeID(fields[1]), petri.Peer(fields[2])
			al := petri.Alarm(fields[3])
			if fields[3] == "_" {
				al = petri.Silent
			}
			if fields[4] != ":" {
				return nil, fmt.Errorf("line %d: expected ':' after alarm", lineNo+1)
			}
			rest := fields[5:]
			arrow := -1
			for i, f := range rest {
				if f == "->" {
					arrow = i
					break
				}
			}
			if arrow < 0 {
				return nil, fmt.Errorf("line %d: missing '->'", lineNo+1)
			}
			var pre, post []petri.NodeID
			for _, f := range rest[:arrow] {
				pre = append(pre, petri.NodeID(f))
			}
			for _, f := range rest[arrow+1:] {
				post = append(post, petri.NodeID(f))
			}
			n.AddTransition(id, peer, al, pre, post)
		case "init":
			for _, f := range fields[1:] {
				init = append(init, petri.NodeID(f))
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	return petri.New(n, petri.NewMarking(init...))
}

// FormatNet renders a net in the textual format Net parses.
func FormatNet(pn *petri.PetriNet) string {
	var b strings.Builder
	for _, pl := range pn.Net.Places() {
		fmt.Fprintf(&b, "place %s %s\n", pl, pn.Net.Place(pl).Peer)
	}
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		al := string(t.Alarm)
		if t.Alarm == petri.Silent {
			al = "_"
		}
		fmt.Fprintf(&b, "trans %s %s %s :", tid, t.Peer, al)
		for _, p := range t.Pre {
			fmt.Fprintf(&b, " %s", p)
		}
		b.WriteString(" ->")
		for _, p := range t.Post {
			fmt.Fprintf(&b, " %s", p)
		}
		b.WriteByte('\n')
	}
	b.WriteString("init")
	for _, pl := range pn.Net.Places() {
		if pn.M0[pl] {
			fmt.Fprintf(&b, " %s", pl)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// Alarms parses an alarm sequence written as space-separated alarm@peer
// pairs: "b@p1 a@p2 c@p1".
func Alarms(src string) (alarm.Seq, error) {
	var out alarm.Seq
	for _, f := range strings.Fields(src) {
		i := strings.LastIndex(f, "@")
		if i <= 0 || i == len(f)-1 {
			return nil, fmt.Errorf("parser: alarm %q is not of the form alarm@peer", f)
		}
		out = append(out, alarm.Obs{Alarm: petri.Alarm(f[:i]), Peer: petri.Peer(f[i+1:])})
	}
	return out, nil
}

// FormatAlarms renders a sequence in the format Alarms parses.
func FormatAlarms(seq alarm.Seq) string {
	parts := make([]string, len(seq))
	for i, o := range seq {
		parts[i] = string(o.Alarm) + "@" + string(o.Peer)
	}
	return strings.Join(parts, " ")
}
