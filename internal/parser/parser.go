package parser

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
)

// parser holds the token stream.
type parser struct {
	lex  *lexer
	tok  token
	s    *term.Store
	dist bool // located atoms seen / required
}

func newParser(src string, store *term.Store) (*parser, error) {
	p := &parser{lex: newLexer(src), s: store}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("line %d: expected %s, found %s", p.tok.line, what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// parseTerm parses a constant, variable, quoted constant or compound term.
func (p *parser) parseTerm() (term.ID, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return 0, err
		}
		return p.s.Variable(name), nil
	case tokString:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return 0, err
		}
		return p.s.Constant(text), nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return 0, err
		}
		if p.tok.kind != tokLParen {
			return p.s.Constant(name), nil
		}
		args, err := p.parseArgs()
		if err != nil {
			return 0, err
		}
		if len(args) == 0 {
			return 0, fmt.Errorf("line %d: empty argument list for function %q", p.tok.line, name)
		}
		return p.s.Compound(name, args...), nil
	default:
		return 0, fmt.Errorf("line %d: expected a term, found %s", p.tok.line, p.tok)
	}
}

// parseArgs parses "(t1, ..., tn)"; "()" yields nil.
func (p *parser) parseArgs() ([]term.ID, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []term.ID
	if p.tok.kind == tokRParen {
		return nil, p.advance()
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		_, err = p.expect(tokRParen, "')' or ','")
		return args, err
	}
}

// locatedAtom is an atom with an optional peer.
type locatedAtom struct {
	rel   rel.Name
	peer  dist.PeerID
	hasAt bool
	args  []term.ID
}

// parseAtom parses rel[@peer](args). Relation names may start uppercase
// (the paper writes R, S, T); the '(' or '@' following disambiguates them
// from variables.
func (p *parser) parseAtom() (locatedAtom, error) {
	if p.tok.kind != tokIdent && p.tok.kind != tokVar {
		return locatedAtom{}, fmt.Errorf("line %d: expected a relation name, found %s", p.tok.line, p.tok)
	}
	name := p.tok
	if err := p.advance(); err != nil {
		return locatedAtom{}, err
	}
	a := locatedAtom{rel: rel.Name(name.text)}
	if p.tok.kind == tokAt {
		if err := p.advance(); err != nil {
			return locatedAtom{}, err
		}
		peer, err := p.expect(tokIdent, "a peer name")
		if err != nil {
			return locatedAtom{}, err
		}
		a.peer = dist.PeerID(peer.text)
		a.hasAt = true
	}
	args, err := p.parseArgs()
	a.args = args
	return a, err
}

// clause is a parsed rule or fact.
type clause struct {
	head locatedAtom
	body []locatedAtom
	neqs []datalog.Neq
}

// parseClause parses one clause terminated by '.'.
func (p *parser) parseClause() (clause, error) {
	var c clause
	var err error
	c.head, err = p.parseAtom()
	if err != nil {
		return c, err
	}
	if p.tok.kind == tokArrow {
		if err := p.advance(); err != nil {
			return c, err
		}
		for {
			// A body element is an atom or a constraint t1 != t2. Both can
			// start with a term, so parse a term first when the lookahead
			// is a variable (constraints between variables/terms), else an
			// atom — relations and constants are both idents, so decide by
			// what follows.
			elem, neq, err := p.parseBodyElem()
			if err != nil {
				return c, err
			}
			if neq != nil {
				c.neqs = append(c.neqs, *neq)
			} else {
				c.body = append(c.body, elem)
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return c, err
				}
				continue
			}
			break
		}
	}
	_, err = p.expect(tokDot, "'.'")
	return c, err
}

// parseBodyElem parses either an atom or an inequality constraint.
func (p *parser) parseBodyElem() (locatedAtom, *datalog.Neq, error) {
	if p.tok.kind == tokString {
		x, err := p.parseTerm()
		if err != nil {
			return locatedAtom{}, nil, err
		}
		return p.parseNeqTail(x)
	}
	// Ident or uppercase name: relation atom R(...) / R@p(...), or a
	// term-led constraint like f(X) != Y, c != X, or X != Y.
	if p.tok.kind != tokIdent && p.tok.kind != tokVar {
		return locatedAtom{}, nil, fmt.Errorf("line %d: expected an atom or term, found %s", p.tok.line, p.tok)
	}
	name := p.tok
	isVar := p.tok.kind == tokVar
	if err := p.advance(); err != nil {
		return locatedAtom{}, nil, err
	}
	if isVar && p.tok.kind == tokNeq {
		return p.parseNeqTail(p.s.Variable(name.text))
	}
	switch p.tok.kind {
	case tokAt, tokLParen:
		// Could be atom or compound-term constraint; parse args, then look
		// for '!='.
		a := locatedAtom{rel: rel.Name(name.text)}
		if p.tok.kind == tokAt {
			if err := p.advance(); err != nil {
				return locatedAtom{}, nil, err
			}
			peer, err := p.expect(tokIdent, "a peer name")
			if err != nil {
				return locatedAtom{}, nil, err
			}
			a.peer = dist.PeerID(peer.text)
			a.hasAt = true
		}
		args, err := p.parseArgs()
		if err != nil {
			return locatedAtom{}, nil, err
		}
		a.args = args
		if p.tok.kind == tokNeq && !a.hasAt {
			if len(a.args) == 0 {
				return locatedAtom{}, nil, fmt.Errorf("line %d: constraint on empty term", p.tok.line)
			}
			x := p.s.Compound(string(a.rel), a.args...)
			return p.parseNeqTail(x)
		}
		return a, nil, nil
	case tokNeq:
		return p.parseNeqTail(p.s.Constant(name.text))
	default:
		return locatedAtom{}, nil, fmt.Errorf("line %d: expected '(' after %q", p.tok.line, name.text)
	}
}

func (p *parser) parseNeqTail(x term.ID) (locatedAtom, *datalog.Neq, error) {
	if _, err := p.expect(tokNeq, "'!='"); err != nil {
		return locatedAtom{}, nil, err
	}
	y, err := p.parseTerm()
	if err != nil {
		return locatedAtom{}, nil, err
	}
	return locatedAtom{}, &datalog.Neq{X: x, Y: y}, nil
}

func (p *parser) parseClauses() ([]clause, error) {
	var out []clause
	for p.tok.kind != tokEOF {
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Program parses a centralized Datalog program. Located atoms (R@p) are
// rejected; use DistProgram for those.
func Program(src string, store *term.Store) (*datalog.Program, error) {
	p, err := newParser(src, store)
	if err != nil {
		return nil, err
	}
	clauses, err := p.parseClauses()
	if err != nil {
		return nil, err
	}
	out := datalog.NewProgram(store)
	for _, c := range clauses {
		for _, a := range append([]locatedAtom{c.head}, c.body...) {
			if a.hasAt {
				return nil, fmt.Errorf("parser: located atom %s@%s in a centralized program", a.rel, a.peer)
			}
		}
		if len(c.body) == 0 && len(c.neqs) == 0 {
			out.AddFact(datalog.Atom{Rel: c.head.rel, Args: c.head.args})
			continue
		}
		r := datalog.Rule{Head: datalog.Atom{Rel: c.head.rel, Args: c.head.args}, Neqs: c.neqs}
		for _, a := range c.body {
			r.Body = append(r.Body, datalog.Atom{Rel: a.rel, Args: a.args})
		}
		out.AddRule(r)
	}
	return out, out.Validate()
}

// DistProgram parses a dDatalog program; every atom must be located.
func DistProgram(src string, store *term.Store) (*ddatalog.Program, error) {
	p, err := newParser(src, store)
	if err != nil {
		return nil, err
	}
	clauses, err := p.parseClauses()
	if err != nil {
		return nil, err
	}
	out := ddatalog.NewProgram(store)
	conv := func(a locatedAtom) (ddatalog.PAtom, error) {
		if !a.hasAt {
			return ddatalog.PAtom{}, fmt.Errorf("parser: atom %s lacks a peer (use %s@peer)", a.rel, a.rel)
		}
		return ddatalog.PAtom{Rel: a.rel, Peer: a.peer, Args: a.args}, nil
	}
	for _, c := range clauses {
		head, err := conv(c.head)
		if err != nil {
			return nil, err
		}
		if len(c.body) == 0 && len(c.neqs) == 0 {
			out.AddFact(head)
			continue
		}
		r := ddatalog.PRule{Head: head, Neqs: c.neqs}
		for _, a := range c.body {
			b, err := conv(a)
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, b)
		}
		out.AddRule(r)
	}
	return out, out.Validate()
}

// Query parses a single atom (optionally located), e.g. "tc(a, X)" or
// "R@r(\"1\", Y)".
func Query(src string, store *term.Store) (rel.Name, dist.PeerID, []term.ID, error) {
	p, err := newParser(src, store)
	if err != nil {
		return "", "", nil, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return "", "", nil, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return "", "", nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return "", "", nil, fmt.Errorf("parser: trailing input after query atom")
	}
	return a.rel, a.peer, a.args, nil
}
