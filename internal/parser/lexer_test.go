package parser

import "testing"

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerKinds(t *testing.T) {
	toks := lexAll(t, `R@p(X, "1") :- a1, X != y.`)
	want := []tokKind{
		tokVar, tokAt, tokIdent, tokLParen, tokVar, tokComma, tokString, tokRParen,
		tokArrow, tokIdent, tokComma, tokVar, tokNeq, tokIdent, tokDot,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v (%q), want kind %d", i, toks[i].kind, toks[i].text, k)
		}
	}
}

func TestLexerDottedIdentifiers(t *testing.T) {
	toks := lexAll(t, `p(pad.ii, idx.p1.0).`)
	if toks[2].text != "pad.ii" || toks[4].text != "idx.p1.0" {
		t.Fatalf("dotted idents: %q, %q", toks[2].text, toks[4].text)
	}
	// Trailing dot terminates the clause even directly after an ident.
	toks = lexAll(t, `q(a).`)
	last := toks[len(toks)-1]
	if last.kind != tokDot {
		t.Fatalf("no trailing dot token: %v", toks)
	}
	if toks[2].text != "a" {
		t.Fatalf("ident swallowed the dot: %q", toks[2].text)
	}
}

func TestLexerLineTracking(t *testing.T) {
	l := newLexer("a\n\nb")
	tok, _ := l.next()
	if tok.line != 1 {
		t.Fatalf("a at line %d", tok.line)
	}
	tok, _ = l.next()
	if tok.line != 3 {
		t.Fatalf("b at line %d", tok.line)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"multi
line"`, `:`, `!x`, `$`} {
		l := newLexer(src)
		bad := false
		for i := 0; i < 10; i++ {
			tok, err := l.next()
			if err != nil {
				bad = true
				break
			}
			if tok.kind == tokEOF {
				break
			}
		}
		if !bad {
			t.Errorf("no lex error for %q", src)
		}
	}
}

func TestLexerCommentsToEOL(t *testing.T) {
	toks := lexAll(t, "a % rest ignored ( ) .\nb")
	if len(toks) != 2 || toks[0].text != "a" || toks[1].text != "b" {
		t.Fatalf("comment handling: %v", toks)
	}
}

func TestTokenString(t *testing.T) {
	if (token{kind: tokEOF}).String() != "end of input" {
		t.Fatal("EOF rendering")
	}
	if (token{kind: tokIdent, text: "x"}).String() != `"x"` {
		t.Fatal("ident rendering")
	}
}
