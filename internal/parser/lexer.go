// Package parser implements the textual formats of the repository's CLI
// tools and examples: Datalog and dDatalog programs, Petri nets, and alarm
// sequences.
//
// Datalog syntax follows the paper's notation:
//
//	% comment
//	edge(a, b).                          % fact
//	tc(X, Y) :- edge(X, Y).              % rule; variables start uppercase
//	tc(X, Z) :- edge(X, Y), tc(Y, Z), X != Z.
//	R@r(X, Y) :- S@s(X, Z), T@t(Z, Y).   % located atoms (dDatalog)
//	wrap(f(X)) :- base(X).               % function symbols
//
// Constants start with a lowercase letter or digit, or are double-quoted;
// variables start with an uppercase letter or underscore.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF    tokKind = iota
	tokIdent          // constant or functor
	tokVar            // variable
	tokString         // quoted constant
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow // :-
	tokNeq   // !=
	tokAt    // @
)

type token struct {
	kind tokKind
	text string
	pos  int
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	start, line := l.pos, l.line
	c := l.src[l.pos]
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, pos: start, line: line}
	}
	switch c {
	case '(':
		l.pos++
		return mk(tokLParen, "("), nil
	case ')':
		l.pos++
		return mk(tokRParen, ")"), nil
	case ',':
		l.pos++
		return mk(tokComma, ","), nil
	case '.':
		l.pos++
		return mk(tokDot, "."), nil
	case '@':
		l.pos++
		return mk(tokAt, "@"), nil
	case ':':
		if strings.HasPrefix(l.src[l.pos:], ":-") {
			l.pos += 2
			return mk(tokArrow, ":-"), nil
		}
		return token{}, l.errorf("unexpected ':'")
	case '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return mk(tokNeq, "!="), nil
		}
		return token{}, l.errorf("unexpected '!'")
	case '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, l.errorf("unterminated string")
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		l.pos++
		return mk(tokString, b.String()), nil
	}

	r := rune(c)
	if isIdentRune(r) {
		for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		// '.' is an identifier character (pad.ii, idx.p1.0) but also the
		// clause terminator; a trailing dot always terminates the clause.
		if len(text) > 1 && strings.HasSuffix(text, ".") {
			text = text[:len(text)-1]
			l.pos--
		}
		first := rune(text[0])
		if unicode.IsUpper(first) || first == '_' {
			return mk(tokVar, text), nil
		}
		return mk(tokIdent, text), nil
	}
	return token{}, l.errorf("unexpected character %q", c)
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == '-' || r == '.' || r == '\'' || r == '×' || r == '#'
}
