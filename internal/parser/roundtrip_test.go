package parser

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
)

// randProgram builds a random well-formed centralized program.
func randProgram(rng *rand.Rand, s *term.Store) *datalog.Program {
	p := datalog.NewProgram(s)
	consts := []term.ID{s.Constant("a"), s.Constant("b"), s.Constant("c1")}
	vars := []term.ID{s.Variable("X"), s.Variable("Y")}
	rels := []rel.Name{"p", "q", "base"}

	randTerm := func(allowVar bool, depth int) term.ID {
		if depth > 0 && rng.Intn(3) == 0 {
			return s.Compound("f", consts[rng.Intn(len(consts))])
		}
		if allowVar && rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return consts[rng.Intn(len(consts))]
	}

	// Facts.
	for i := 0; i < 1+rng.Intn(3); i++ {
		p.AddFact(datalog.A("base", randTerm(false, 1), randTerm(false, 1)))
	}
	// Rules: head vars drawn from a body atom that binds both vars.
	for i := 0; i < 1+rng.Intn(3); i++ {
		head := datalog.A(rels[rng.Intn(2)], vars[0], vars[1])
		body := []datalog.Atom{datalog.A("base", vars[0], vars[1])}
		if rng.Intn(2) == 0 {
			body = append(body, datalog.A("base", vars[1], randTerm(true, 1)))
		}
		r := datalog.Rule{Head: head, Body: body}
		if rng.Intn(3) == 0 {
			r.Neqs = []datalog.Neq{{X: vars[0], Y: vars[1]}}
		}
		p.AddRule(r)
	}
	return p
}

// TestQuickProgramRoundTrip: String -> parse -> String is a fixpoint for
// random programs, and both evaluate identically.
func TestQuickProgramRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := term.NewStore()
		p1 := randProgram(rng, s1)
		text := p1.String()

		s2 := term.NewStore()
		p2, err := Program(text, s2)
		if err != nil {
			t.Logf("parse error on:\n%s\n%v", text, err)
			return false
		}
		if p2.String() != text {
			t.Logf("round trip changed:\n%s\nvs\n%s", p2.String(), text)
			return false
		}
		db1, _ := p1.SemiNaive(datalog.Budget{})
		db2, _ := p2.SemiNaive(datalog.Budget{})
		return db1.Dump() == db2.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistProgramRoundTrip does the same for located programs.
func TestQuickDistProgramRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := term.NewStore()
		p1 := ddatalog.NewProgram(s1)
		x, y := s1.Variable("X"), s1.Variable("Y")
		peers := []dist.PeerID{"p1", "p2"}
		for i := 0; i < 1+rng.Intn(3); i++ {
			p1.AddFact(ddatalog.At("base", peers[rng.Intn(2)],
				s1.Constant("a"), s1.Constant("b")))
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			p1.AddRule(ddatalog.PRule{
				Head: ddatalog.At("derived", peers[rng.Intn(2)], x, y),
				Body: []ddatalog.PAtom{ddatalog.At("base", peers[rng.Intn(2)], x, y)},
			})
		}
		text := ""
		for _, f := range p1.Facts {
			text += f.String(s1) + ".\n"
		}
		for _, r := range p1.Rules {
			text += r.String(s1) + "\n"
		}
		s2 := term.NewStore()
		p2, err := DistProgram(text, s2)
		if err != nil {
			t.Logf("parse error on:\n%s\n%v", text, err)
			return false
		}
		return len(p2.Rules) == len(p1.Rules) && len(p2.Facts) == len(p1.Facts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParseGeneratedDiagnosisProgram parses the (large, generated)
// localized diagnosis program of the running example and checks the
// round trip is a fixpoint — the parser handles everything the Section 4
// generators emit: Skolem terms, dotted constants, adorned names,
// inequality constraints.
func TestParseGeneratedDiagnosisProgram(t *testing.T) {
	data, err := os.ReadFile("../diagnosis/testdata/diagnosis_program.golden")
	if err != nil {
		t.Skipf("golden file unavailable: %v", err)
	}
	s := term.NewStore()
	p, err := DistProgram(string(data), s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String(s) + ".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String(s) + "\n")
	}
	if b.String() != string(data) {
		t.Fatal("round trip changed the generated program")
	}
	if len(p.Rules) < 50 || len(p.Facts) < 30 {
		t.Fatalf("suspiciously small: %d rules, %d facts", len(p.Rules), len(p.Facts))
	}
}
