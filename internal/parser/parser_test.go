package parser

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/petri"
	"repro/internal/qsq"
	"repro/internal/term"
)

func TestParseFactsAndRules(t *testing.T) {
	s := term.NewStore()
	p, err := Program(`
		% transitive closure
		edge(a, b).
		edge(b, c).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Facts) != 2 || len(p.Rules) != 2 {
		t.Fatalf("facts=%d rules=%d", len(p.Facts), len(p.Rules))
	}
	db, _ := p.SemiNaive(datalog.Budget{})
	if db.Lookup("tc").Len() != 3 {
		t.Fatalf("tc = %d", db.Lookup("tc").Len())
	}
}

func TestParseQuotedAndNumericConstants(t *testing.T) {
	s := term.NewStore()
	p, err := Program(`r("1", hello-world). r(2, x3).`, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Facts) != 2 {
		t.Fatalf("facts = %v", p.Facts)
	}
	if s.String(p.Facts[0].Args[0]) != "1" {
		t.Fatalf("quoted constant = %q", s.String(p.Facts[0].Args[0]))
	}
}

func TestParseFunctionTerms(t *testing.T) {
	s := term.NewStore()
	p, err := Program(`
		base(z).
		nat(s(X)) :- nat(X).
		nat(X) :- base(X).
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := p.SemiNaive(datalog.Budget{MaxTermDepth: 3})
	if db.Lookup("nat").Len() != 4 {
		t.Fatalf("nat = %d", db.Lookup("nat").Len())
	}
}

func TestParseNeqConstraints(t *testing.T) {
	s := term.NewStore()
	p, err := Program(`
		n(a). n(b).
		pair(X, Y) :- n(X), n(Y), X != Y.
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := p.SemiNaive(datalog.Budget{})
	if db.Lookup("pair").Len() != 2 {
		t.Fatalf("pair = %d", db.Lookup("pair").Len())
	}
}

func TestParseNeqWithCompoundAndConstant(t *testing.T) {
	s := term.NewStore()
	p, err := Program(`
		n(a). n(f(a)).
		odd(X) :- n(X), X != a.
		alt(X) :- n(X), f(X) != f(a).
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := p.SemiNaive(datalog.Budget{})
	if db.Lookup("odd").Len() != 1 {
		t.Fatalf("odd = %d", db.Lookup("odd").Len())
	}
	if db.Lookup("alt").Len() != 1 {
		t.Fatalf("alt = %d", db.Lookup("alt").Len())
	}
}

func TestParseErrors(t *testing.T) {
	s := term.NewStore()
	for _, src := range []string{
		`edge(a, b)`,           // missing dot
		`edge(a, .`,            // bad term
		`tc(X) :- .`,           // empty body
		`tc(X) :- edge(X, Y)`,  // missing dot
		`r(X) :- e(X), X != .`, // bad constraint
		`r("unterminated) .`,   // bad string
		`r(x) :- ! e(x).`,      // stray !
		`R@p(x) :- R@p(x).`,    // located atom in centralized program
		`head(X) :- e(Y).`,     // range restriction (validation)
	} {
		if _, err := Program(src, s); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseDistProgramFigure3(t *testing.T) {
	s := term.NewStore()
	p, err := DistProgram(`
		R@r(X, Y) :- A@r(X, Y).
		R@r(X, Y) :- S@s(X, Z), T@t(Z, Y).
		S@s(X, Y) :- R@r(X, Y), B@s(Y, Z).
		T@t(X, Y) :- C@t(X, Y).
		A@r("1", "2").
		B@s("2", ok).
		C@t("2", "4").
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 || len(p.Facts) != 3 {
		t.Fatalf("rules=%d facts=%d", len(p.Rules), len(p.Facts))
	}
	res, _, err := ddatalog.Run(p, ddatalog.At("R", "r", s.Constant("1"), s.Variable("Y")),
		datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 { // R(1,2) via A; R(1,4) via S,T
		t.Fatalf("answers = %d", len(res.Answers))
	}
}

func TestParseDistProgramRejectsUnlocated(t *testing.T) {
	s := term.NewStore()
	if _, err := DistProgram(`R@r(X) :- A(X).`, s); err == nil {
		t.Fatal("unlocated atom accepted")
	}
}

func TestParseQueryAtom(t *testing.T) {
	s := term.NewStore()
	r, peer, args, err := Query(`tc(a, X)`, s)
	if err != nil {
		t.Fatal(err)
	}
	if r != "tc" || peer != "" || len(args) != 2 {
		t.Fatalf("r=%s peer=%s args=%v", r, peer, args)
	}
	r, peer, _, err = Query(`R@r("1", Y).`, s)
	if err != nil {
		t.Fatal(err)
	}
	if r != "R" || peer != "r" {
		t.Fatalf("r=%s peer=%s", r, peer)
	}
	if _, _, _, err := Query(`a(x) b(y)`, s); err == nil {
		t.Fatal("trailing input accepted")
	}
}

func TestRoundTripThroughQSQ(t *testing.T) {
	// Parse, rewrite with QSQ, evaluate: end-to-end sanity.
	s := term.NewStore()
	p, err := Program(`
		edge(a, b). edge(b, c). edge(x, y).
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
	`, s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, _, err := qsq.Run(p, datalog.A("tc", s.Constant("a"), s.Variable("Y")), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestNetRoundTrip(t *testing.T) {
	pn := petri.Example()
	text := FormatNet(pn)
	back, err := Net(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if FormatNet(back) != text {
		t.Fatalf("round trip changed:\n%s\nvs\n%s", FormatNet(back), text)
	}
	// Parsed net behaves like the original.
	a := pn.EnabledSet(pn.M0)
	b := back.EnabledSet(back.M0)
	if len(a) != len(b) {
		t.Fatalf("enabled sets differ")
	}
}

func TestNetSilentTransitions(t *testing.T) {
	pn, err := Net(`
		# tiny net with a hidden transition
		place a p
		place b p
		trans t p _ : a -> b
		init a
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pn.Net.Transition("t").Alarm != petri.Silent {
		t.Fatal("silent alarm not parsed")
	}
}

func TestNetErrors(t *testing.T) {
	for _, src := range []string{
		"place a",                               // missing peer
		"trans t p x : a",                       // missing arrow
		"trans t p x a -> b",                    // missing colon
		"bogus directive",                       // unknown
		"place a p\ninit a b",                   // unknown init place
		"place a p\ntrans t p x : -> a\ninit a", // no preset
	} {
		if _, err := Net(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAlarmsRoundTrip(t *testing.T) {
	seq, err := Alarms("b@p1 a@p2 c@p1")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 || seq[0].Alarm != "b" || seq[0].Peer != "p1" {
		t.Fatalf("seq = %v", seq)
	}
	if FormatAlarms(seq) != "b@p1 a@p2 c@p1" {
		t.Fatalf("format = %q", FormatAlarms(seq))
	}
	if _, err := Alarms("nopeer"); err == nil {
		t.Fatal("malformed alarm accepted")
	}
	if _, err := Alarms("@p"); err == nil {
		t.Fatal("empty alarm accepted")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	s := term.NewStore()
	p, err := Program("% only comments\n\n  % more\n r(a). % trailing\n", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Facts) != 1 {
		t.Fatalf("facts = %v", p.Facts)
	}
	if !strings.Contains(p.String(), "r(a)") {
		t.Fatal("String rendering lost the fact")
	}
}
