package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPoolPerSenderFIFO checks the pool's ordering contract under
// real contention: with 4 workers, several sources blast interleaved
// numbered streams at one sink, and every source's stream must still
// arrive in send order (streams may interleave with each other freely).
func TestWorkerPoolPerSenderFIFO(t *testing.T) {
	const sources, msgs = 6, 200
	n := NewNetwork()
	n.SetWorkers(4)
	var mu sync.Mutex
	got := make(map[PeerID][]int)
	n.AddPeer("sink", func(ctx *Context, m Message) {
		mu.Lock()
		got[m.From] = append(got[m.From], m.Payload.(int))
		mu.Unlock()
	})
	var seeds []Message
	for s := 0; s < sources; s++ {
		id := PeerID(fmt.Sprintf("src%d", s))
		n.AddPeer(id, func(ctx *Context, m Message) {
			for i := 0; i < msgs; i++ {
				ctx.Send("sink", i)
			}
		})
		seeds = append(seeds, Message{From: "go", To: id, Payload: 0})
	}
	st, err := n.Run(seeds, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Processed["sink"] != sources*msgs {
		t.Fatalf("sink processed %d, want %d", st.Processed["sink"], sources*msgs)
	}
	for s := 0; s < sources; s++ {
		id := PeerID(fmt.Sprintf("src%d", s))
		stream := got[id]
		if len(stream) != msgs {
			t.Fatalf("%s delivered %d messages, want %d", id, len(stream), msgs)
		}
		for i, v := range stream {
			if v != i {
				t.Fatalf("%s stream out of order at %d: got %d", id, i, v)
			}
		}
	}
}

// TestWorkerPoolSingleOwnership checks the pool's exclusivity contract:
// a peer's handler never runs on two workers at once, even with a pool
// much wider than the peer count.
func TestWorkerPoolSingleOwnership(t *testing.T) {
	const peers, rounds = 3, 50
	n := NewNetwork()
	n.SetWorkers(8)
	active := make([]atomic.Int32, peers)
	var violations atomic.Int32
	var seeds []Message
	for p := 0; p < peers; p++ {
		p := p
		id := PeerID(fmt.Sprintf("p%d", p))
		next := PeerID(fmt.Sprintf("p%d", (p+1)%peers))
		n.AddPeer(id, func(ctx *Context, m Message) {
			if active[p].Add(1) != 1 {
				violations.Add(1)
			}
			k := m.Payload.(int)
			if k > 0 {
				ctx.Send(next, k-1)
			}
			active[p].Add(-1)
		})
		seeds = append(seeds, Message{From: "go", To: id, Payload: rounds})
	}
	if _, err := n.Run(seeds, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d concurrent handler invocations on one peer", v)
	}
}

// TestWorkerPoolStatsMatchSequential checks that widening the pool does
// not change what the network computes: the ping-pong workload must
// process the same message multiset with 1 worker and with 4.
func TestWorkerPoolStatsMatchSequential(t *testing.T) {
	runIt := func(workers int) Stats {
		n := NewNetwork()
		n.SetWorkers(workers)
		handler := func(ctx *Context, m Message) {
			k := m.Payload.(int)
			if k > 0 {
				ctx.Send(m.From, k-1)
			}
		}
		n.AddPeer("a", handler)
		n.AddPeer("b", handler)
		st, err := n.Run([]Message{{From: "a", To: "b", Payload: 40}}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq, par := runIt(1), runIt(4)
	if seq.MessagesSent != par.MessagesSent {
		t.Fatalf("sent: seq %d, par %d", seq.MessagesSent, par.MessagesSent)
	}
	if fmt.Sprint(seq.Processed) != fmt.Sprint(par.Processed) {
		t.Fatalf("processed: seq %v, par %v", seq.Processed, par.Processed)
	}
}
