package dist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMessagesByPairConsistency asserts the per-channel counts sum to the
// global MessagesSent and attribute each channel correctly.
func TestMessagesByPairConsistency(t *testing.T) {
	n := NewNetwork()
	handler := func(ctx *Context, m Message) {
		k := m.Payload.(int)
		if k > 0 {
			ctx.Send(m.From, k-1)
		}
	}
	n.AddPeer("a", handler)
	n.AddPeer("b", handler)
	st, err := n.Run([]Message{{From: "a", To: "b", Payload: 10}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range st.MessagesByPair {
		sum += c
	}
	if sum != st.MessagesSent {
		t.Fatalf("sum(MessagesByPair) = %d, MessagesSent = %d", sum, st.MessagesSent)
	}
	// Seed a→b plus 10 replies alternating b→a (5) and a→b (5).
	if st.MessagesByPair[Pair{From: "a", To: "b"}] != 6 || st.MessagesByPair[Pair{From: "b", To: "a"}] != 5 {
		t.Fatalf("channels: %v", st.MessagesByPair)
	}
}

// TestSendNopTracerZeroAllocs pins the hot-path contract of the ISSUE:
// with the default no-op tracer, dispatching a message through send
// allocates nothing (beyond the amortized queue array, which the warmup
// grows and the loop body reuses).
func TestSendNopTracerZeroAllocs(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {})
	p := n.peers["a"]
	m := Message{From: "b", To: "a", Payload: nil}
	n.send(m) // warm the queue array and the pair-count map entry
	p.queue = p.queue[:0]
	n.inflight = 0
	if allocs := testing.AllocsPerRun(1000, func() {
		n.send(m)
		p.queue = p.queue[:0]
		n.inflight = 0
	}); allocs != 0 {
		t.Fatalf("send with Nop tracer allocates %v per op, want 0", allocs)
	}
}

// TestRunTraceEvents drives a small network under a ChromeTraceWriter and
// checks the trace shape the acceptance criteria name: at least one span
// per peer, one flow-begin event per sent message, one flow-end per
// delivery, all consistent with Stats.
func TestRunTraceEvents(t *testing.T) {
	w := obs.NewChromeTraceWriter(0)
	n := NewNetwork()
	n.SetTracer(w)
	handler := func(ctx *Context, m Message) {
		k := m.Payload.(int)
		if k > 0 {
			ctx.Send(m.From, k-1)
		}
	}
	n.AddPeer("a", handler)
	n.AddPeer("b", handler)
	n.AddPeer("idle", func(ctx *Context, m Message) {})
	st, err := n.Run([]Message{{From: "b", To: "a", Payload: 6}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}

	tracks := map[int]string{}
	spansPerTrack := map[string]int{}
	flowBegins, flowEnds := 0, 0
	pairCounters := 0
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.TID] = e.Args["name"].(string)
		}
	}
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			spansPerTrack[tracks[e.TID]]++
		case "s":
			flowBegins++
		case "f":
			flowEnds++
		case "C":
			if strings.HasPrefix(e.Name, "dist_messages_total{") {
				pairCounters++
			}
		}
	}
	for _, peer := range []string{"a", "b", "idle"} {
		if spansPerTrack[peer] < 1 {
			t.Fatalf("no span on peer track %q: %v", peer, spansPerTrack)
		}
	}
	if flowBegins != st.MessagesSent {
		t.Fatalf("flow-begin events = %d, MessagesSent = %d", flowBegins, st.MessagesSent)
	}
	delivered := 0
	for _, c := range st.Processed {
		delivered += c
	}
	if flowEnds != delivered {
		t.Fatalf("flow-end events = %d, delivered = %d", flowEnds, delivered)
	}
	if pairCounters != len(st.MessagesByPair) {
		t.Fatalf("pair counter samples = %d, pairs = %d", pairCounters, len(st.MessagesByPair))
	}
}
