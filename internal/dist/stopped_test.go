package dist

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoppedVisibleInHandler: after an abort, a long-running handler can
// observe Stopped and bail out instead of looping forever.
func TestStoppedVisibleInHandler(t *testing.T) {
	boom := errors.New("boom")
	var sawStopped atomic.Bool
	n := NewNetwork()
	n.AddPeer("worker", func(ctx *Context, m Message) {
		if m.Payload.(string) == "abort" {
			ctx.Abort(boom)
			// The handler keeps "working"; Stopped must flip.
			for i := 0; i < 1000000; i++ {
				if ctx.Stopped() {
					sawStopped.Store(true)
					return
				}
			}
		}
	})
	_, err := n.Run([]Message{{From: "x", To: "worker", Payload: "abort"}}, 5*time.Second)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !sawStopped.Load() {
		t.Fatal("handler never observed Stopped")
	}
}

// TestStoppedFalseWhileRunning: a healthy run never reports stopped to a
// handler mid-flight.
func TestStoppedFalseWhileRunning(t *testing.T) {
	var sawStopped atomic.Bool
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		if ctx.Stopped() {
			sawStopped.Store(true)
		}
		if k := m.Payload.(int); k > 0 {
			ctx.Send("a", k-1)
		}
	})
	if _, err := n.Run([]Message{{From: "x", To: "a", Payload: 5}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if sawStopped.Load() {
		t.Fatal("Stopped reported during a healthy run")
	}
}

// TestLateSendsDropped: sends issued after an abort are dropped without
// panicking or deadlocking.
func TestLateSendsDropped(t *testing.T) {
	boom := errors.New("boom")
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		ctx.Abort(boom)
		ctx.Send("a", "late") // must be a silent no-op
	})
	if _, err := n.Run([]Message{{From: "x", To: "a", Payload: "go"}}, 5*time.Second); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
