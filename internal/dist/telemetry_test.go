package dist

import (
	"context"
	"errors"
	"log/slog"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// tracedRingCluster is ringCluster with telemetry: every member round
// records a Chrome trace, and after each round the member drains the
// events and ships them (plus a counter sample) to the driver.
func tracedRingCluster(t *testing.T) *Driver {
	t.Helper()
	mesh := transport.NewMesh()
	assign := map[PeerID]string{"b": "n1", "c": "n2"}
	drv, err := NewDriver(mesh.Node("drv"), []string{"n1", "n2"}, assign)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Node("drv").Close() })
	for node, peer := range map[string]PeerID{"n1": "b", "n2": "c"} {
		m, err := NewMember(mesh.Node(node), "drv")
		if err != nil {
			t.Fatal(err)
		}
		m.SetAssign(assign)
		t.Cleanup(func() { m.Close() })
		go func(m *Member, peer PeerID) {
			tw := obs.NewChromeTraceWriter(0)
			for {
				r := m.NextRound()
				r.SetTracer(tw)
				r.AddPeer(peer, ringHandler(peer))
				stats, err := r.Run(nil, 30*time.Second)
				if errors.Is(err, ErrClusterClosed) {
					return
				}
				events, dropped := tw.DrainEvents()
				wireEvents := make([]wire.TraceEvent, len(events))
				for i, ev := range events {
					wireEvents[i] = wire.TraceEvent{
						Track: ev.Track, Name: ev.Name, Ph: ev.Ph,
						Wall: ev.Wall, Dur: ev.Dur, Value: ev.Value, ID: ev.ID,
					}
				}
				r.SendTelemetry(wire.Telemetry{
					WallMicros: uint64(time.Now().UnixMicro()),
					Dropped:    uint64(dropped),
					Counters:   []wire.KV{{Key: "hops", Val: uint64(stats.MessagesSent)}},
					Gauges:     []wire.KV{{Key: "go_goroutines", Val: 1}},
					Events:     wireEvents,
				})
				r.Finish(nil)
			}
		}(m, peer)
	}
	return drv
}

// TestClusterTelemetry: member telemetry samples arrive before Run
// returns, tagged with node and generation, carrying the members' trace
// events — and the flow IDs in those events line up with the driver's own
// so a merged trace binds cross-process arrows.
func TestClusterTelemetry(t *testing.T) {
	drv := tracedRingCluster(t)

	tw := obs.NewChromeTraceWriter(0)
	r := drv.NewRound()
	r.SetTracer(tw)
	r.AddPeer("a", ringHandler("a"))
	seed := []Message{{From: "seed", To: "a", Payload: wire.Activate{Rel: "10"}}}
	if _, err := r.Run(seed, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	tels := r.ClusterTelemetry()
	byNode := map[string]wire.Telemetry{}
	for _, tel := range tels {
		byNode[tel.Node] = tel
		if tel.Gen != r.gen {
			t.Errorf("telemetry from %s has gen %d, want %d", tel.Node, tel.Gen, r.gen)
		}
	}
	if len(byNode) != 2 || byNode["n1"].Node == "" || byNode["n2"].Node == "" {
		t.Fatalf("telemetry nodes = %v, want n1 and n2", byNode)
	}
	// The ring run put 4 hops through b (n1) and 3 through c (n2); each
	// member's trace saw at least that many events.
	if len(byNode["n1"].Events) == 0 || len(byNode["n2"].Events) == 0 {
		t.Fatalf("member events: n1=%d n2=%d, want > 0",
			len(byNode["n1"].Events), len(byNode["n2"].Events))
	}
	if byNode["n1"].Counters[0].Key != "hops" || byNode["n1"].Counters[0].Val == 0 {
		t.Fatalf("n1 counters = %v", byNode["n1"].Counters)
	}

	// Cross-process flow binding: the driver's trace records the send half
	// ('s') of every a→b hop under a driver-based flow ID; member n1's
	// shipped events must contain the matching receive half ('f') under
	// the very same ID.
	driverSends := map[uint64]bool{}
	for _, ev := range tw.Events() {
		if ev.Ph == 's' {
			driverSends[ev.ID] = true
		}
	}
	matched := 0
	for _, ev := range byNode["n1"].Events {
		if ev.Ph == 'f' && driverSends[ev.ID] {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no member flow-end bound to a driver flow-begin: flow IDs not propagated")
	}

	// Flow IDs drawn by different nodes must not collide: the per-node
	// bases put them in disjoint ranges.
	if FlowBase("drv") == FlowBase("n1") || FlowBase("n1") == FlowBase("n2") {
		t.Fatal("flow bases collide")
	}
}

// capturingHandler records slog records for assertion.
type capturingHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *capturingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *capturingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	h.records = append(h.records, r)
	h.mu.Unlock()
	return nil
}
func (h *capturingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *capturingHandler) WithGroup(string) slog.Handler      { return h }

// fakeRegistry records what the straggler reporter folds into metrics.
type fakeRegistry struct {
	mu       sync.Mutex
	counters map[string]int64
	observed map[string][]time.Duration
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{counters: make(map[string]int64), observed: make(map[string][]time.Duration)}
}

func (r *fakeRegistry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}
func (r *fakeRegistry) SetGauge(string, int64) {}
func (r *fakeRegistry) Observe(name string, d time.Duration) {
	r.mu.Lock()
	r.observed[name] = append(r.observed[name], d)
	r.mu.Unlock()
}

// TestStragglerReport drives reportStragglers directly: a node whose mean
// status-reply latency is far past the cluster median must be named in a
// structured warning and counted in dist_straggler_total{node}; balanced
// nodes must not. Every node's mean must land in its
// dist_round_latency_seconds{node,phase} series.
func TestStragglerReport(t *testing.T) {
	cap := &capturingHandler{}
	reg := newFakeRegistry()
	mesh := transport.NewMesh()
	drv, err := NewDriver(mesh.Node("drv"), []string{"n1", "n2", "n3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Node("drv").Close() })
	drv.SetLogger(slog.New(cap))
	drv.SetMetrics(reg)

	r := drv.NewRound()
	r.statLat = map[string]latSample{
		"n1": {sum: 10 * time.Millisecond, n: 10},
		"n2": {sum: 12 * time.Millisecond, n: 10},
		"n3": {sum: 200 * time.Millisecond, n: 10}, // 20ms mean vs ~1ms median
	}
	r.reportStragglers()

	cap.mu.Lock()
	defer cap.mu.Unlock()
	var named []string
	for _, rec := range cap.records {
		if rec.Message != "dist: straggler detected" {
			continue
		}
		rec.Attrs(func(a slog.Attr) bool {
			if a.Key == "node" {
				named = append(named, a.Value.String())
			}
			if a.Key == "phase" && a.Value.String() != "status-reply" {
				t.Errorf("phase = %s, want status-reply", a.Value.String())
			}
			return true
		})
	}
	if len(named) != 1 || named[0] != "n3" {
		t.Fatalf("stragglers named = %v, want [n3]", named)
	}

	reg.mu.Lock()
	defer reg.mu.Unlock()
	if got := reg.counters[`dist_straggler_total{node="n3"}`]; got != 1 {
		t.Fatalf("dist_straggler_total{n3} = %d, want 1 (counters: %v)", got, reg.counters)
	}
	for name := range reg.counters {
		if name != `dist_straggler_total{node="n3"}` {
			t.Errorf("unexpected straggler counter %s", name)
		}
	}
	for node, mean := range map[string]time.Duration{"n1": time.Millisecond, "n2": 1200 * time.Microsecond, "n3": 20 * time.Millisecond} {
		series := `dist_round_latency_seconds{node="` + node + `",phase="status-reply"}`
		got := reg.observed[series]
		if len(got) != 1 || got[0] != mean {
			t.Errorf("%s = %v, want [%v]", series, got, mean)
		}
	}

	// The exported summary carries the same verdicts for telemetry folds.
	byNode := map[string]RoundLatency{}
	for _, l := range r.RoundLatencies() {
		if l.Phase == "status-reply" {
			byNode[l.Node] = l
		}
	}
	if len(byNode) != 3 {
		t.Fatalf("RoundLatencies nodes = %v", byNode)
	}
	if !byNode["n3"].Straggler || byNode["n1"].Straggler || byNode["n2"].Straggler {
		t.Fatalf("RoundLatencies straggler flags wrong: %v", byNode)
	}
	if byNode["n3"].Mean != 20*time.Millisecond || byNode["n3"].Samples != 10 {
		t.Fatalf("n3 summary = %+v", byNode["n3"])
	}
}

// TestRoundSpanFeedsHistogram: a metrics sink with the dist-round track
// routed to dist_round_latency_seconds (the peerd -admin wiring) folds
// one histogram sample out of every Network.Run — the node's own view of
// the round, no driver required.
func TestRoundSpanFeedsHistogram(t *testing.T) {
	reg := newFakeRegistry()
	sink := obs.NewMetricsSink(reg)
	sink.ObserveSpans("dist-round", "dist_round_latency_seconds")
	n := NewNetwork()
	n.SetTracer(sink)
	n.AddPeer("a", func(ctx *Context, m Message) {})
	if _, err := n.Run(nil, time.Second); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if got := reg.observed["dist_round_latency_seconds"]; len(got) != 1 {
		t.Fatalf("dist_round_latency_seconds observations = %v, want exactly one", got)
	}
}

// TestRoundLatencySingleNode: a one-node cluster still observes its
// latency series (there is no median to judge against, so nothing is
// ever flagged).
func TestRoundLatencySingleNode(t *testing.T) {
	reg := newFakeRegistry()
	mesh := transport.NewMesh()
	drv, err := NewDriver(mesh.Node("drv"), []string{"n1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Node("drv").Close() })
	drv.SetMetrics(reg)

	r := drv.NewRound()
	r.statLat = map[string]latSample{"n1": {sum: 500 * time.Millisecond, n: 5}}
	r.reportStragglers()

	reg.mu.Lock()
	defer reg.mu.Unlock()
	if len(reg.counters) != 0 {
		t.Fatalf("single-node round flagged stragglers: %v", reg.counters)
	}
	series := `dist_round_latency_seconds{node="n1",phase="status-reply"}`
	if got := reg.observed[series]; len(got) != 1 || got[0] != 100*time.Millisecond {
		t.Fatalf("%s = %v, want [100ms]", series, got)
	}
}

// TestStragglerQuietWhenBalanced: near-identical latencies log nothing,
// and sub-millisecond absolute gaps never qualify however skewed the
// ratio (the stragglerMinGap floor).
func TestStragglerQuietWhenBalanced(t *testing.T) {
	cap := &capturingHandler{}
	mesh := transport.NewMesh()
	drv, err := NewDriver(mesh.Node("drv"), []string{"n1", "n2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Node("drv").Close() })
	drv.SetLogger(slog.New(cap))

	r := drv.NewRound()
	r.statLat = map[string]latSample{
		"n1": {sum: 100 * time.Microsecond, n: 10},
		"n2": {sum: 900 * time.Microsecond, n: 10}, // 9x ratio, but 80µs gap
	}
	r.doneLat = map[string]latSample{
		"n1": {sum: 50 * time.Millisecond, n: 10},
		"n2": {sum: 55 * time.Millisecond, n: 10},
	}
	r.reportStragglers()

	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.records) != 0 {
		t.Fatalf("unexpected log records: %v", cap.records)
	}
}

// TestFlowBaseDisjoint pins the flow-ID layout: bases occupy the top 32
// bits, leaving the full bottom range for per-node sequences, and the
// driver round actually seeds its network with its own base.
func TestFlowBaseDisjoint(t *testing.T) {
	names := []string{"drv", "n1", "n2", "node-a", "node-b", strconv.Itoa(1 << 20)}
	seen := map[uint64]string{}
	for _, n := range names {
		b := FlowBase(n)
		if b == 0 {
			t.Errorf("FlowBase(%q) = 0", n)
		}
		if b&0xFFFFFFFF != 0 {
			t.Errorf("FlowBase(%q) = %#x leaks into the low 32 bits", n, b)
		}
		if prev, dup := seen[b]; dup {
			t.Errorf("FlowBase collision: %q and %q", prev, n)
		}
		seen[b] = n
	}
}
