package dist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestByteCountersSymmetric: every wire-codec payload charged to
// BytesSentByPair must show up in the receiver's BytesReceivedByPair with
// the same figure (all peers local here, so the two maps coincide).
func TestByteCountersSymmetric(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		if _, ok := m.Payload.(wire.Activate); ok {
			ctx.Send("b", wire.Facts{Qual: "r@a", Arity: 0})
		}
	})
	n.AddPeer("b", func(ctx *Context, m Message) {})
	stats, err := n.Run([]Message{{From: "q", To: "a", Payload: wire.Activate{Rel: "r"}}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.BytesSentByPair) != 2 {
		t.Fatalf("BytesSentByPair = %v, want 2 pairs", stats.BytesSentByPair)
	}
	for pair, sent := range stats.BytesSentByPair {
		size, ok := wire.PayloadSize(wire.Activate{Rel: "r"})
		if !ok {
			t.Fatal("Activate has no wire size")
		}
		if pair.From == "a" {
			size, _ = wire.PayloadSize(wire.Facts{Qual: "r@a", Arity: 0})
		}
		if sent != size {
			t.Errorf("%v: sent %d bytes, wire size %d", pair, sent, size)
		}
		if got := stats.BytesReceivedByPair[pair]; got != sent {
			t.Errorf("%v: received %d bytes, sent %d", pair, got, sent)
		}
	}
}

// TestNonWirePayloadCountsZeroBytes: toy payloads outside the wire codec
// keep the message counters but charge no bytes.
func TestNonWirePayloadCountsZeroBytes(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {})
	stats, err := n.Run([]Message{{From: "q", To: "a", Payload: 42}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 1 {
		t.Fatalf("MessagesSent = %d", stats.MessagesSent)
	}
	if len(stats.BytesSentByPair) != 0 || len(stats.BytesReceivedByPair) != 0 {
		t.Fatalf("byte counters not empty: %v / %v", stats.BytesSentByPair, stats.BytesReceivedByPair)
	}
}

// TestRouteDivertsUnknownPeers: with a route installed, sends to peers not
// hosted here are counted and diverted instead of panicking, and do not
// keep the local network from quiescing.
func TestRouteDivertsUnknownPeers(t *testing.T) {
	n := NewNetwork()
	var mu sync.Mutex
	var routed []Message
	n.SetRoute(func(m Message) {
		mu.Lock()
		routed = append(routed, m)
		mu.Unlock()
	})
	n.AddPeer("a", func(ctx *Context, m Message) {
		ctx.Send("remote", wire.Activate{Rel: "r1"})
		ctx.Send("remote", wire.Activate{Rel: "r2"})
	})
	stats, err := n.Run([]Message{{From: "q", To: "a", Payload: wire.Activate{Rel: "seed"}}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(routed) != 2 {
		t.Fatalf("routed %d messages, want 2", len(routed))
	}
	// Per-sender order must survive the diversion.
	if routed[0].Payload.(wire.Activate).Rel != "r1" || routed[1].Payload.(wire.Activate).Rel != "r2" {
		t.Fatalf("routed out of order: %v", routed)
	}
	if stats.MessagesSent != 3 {
		t.Fatalf("MessagesSent = %d, want 3 (seed + two routed)", stats.MessagesSent)
	}
	if stats.MessagesByPair[Pair{"a", "remote"}] != 2 {
		t.Fatalf("MessagesByPair = %v", stats.MessagesByPair)
	}
	// Routed messages were sent but not processed here.
	if stats.Processed["a"] != 1 {
		t.Fatalf("Processed = %v", stats.Processed)
	}
}

// TestExternalMemberLifecycle drives a member network by hand: it must
// not stop on local idleness, must fire notify on each idle transition,
// must process injected messages, and must stop only via Stop.
func TestExternalMemberLifecycle(t *testing.T) {
	n := NewNetwork()
	idle := make(chan struct{}, 16)
	n.SetExternal(func() {
		select {
		case idle <- struct{}{}:
		default:
		}
	})
	handled := make(chan Message, 16)
	n.AddPeer("a", func(ctx *Context, m Message) { handled <- m })

	done := make(chan struct{})
	var stats Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = n.Run(nil, 5*time.Second)
	}()

	<-idle // member reports idle immediately: empty seed does not stop it
	n.Inject(Message{From: "x", To: "a", Payload: wire.Activate{Rel: "r"}})
	m := <-handled
	if m.From != "x" {
		t.Fatalf("handled %v", m)
	}
	<-idle // idle again after draining the injection

	sent, processed, isIdle := n.Counters()
	if sent != 0 || processed != 1 || !isIdle {
		t.Fatalf("Counters = (%d, %d, %v), want (0, 1, true)", sent, processed, isIdle)
	}

	n.Stop(nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if runErr != nil {
		t.Fatalf("Run returned %v", runErr)
	}
	if stats.Processed["a"] != 1 {
		t.Fatalf("Processed = %v", stats.Processed)
	}
	// Injected messages count as received bytes but not as sent.
	if stats.MessagesSent != 0 {
		t.Fatalf("MessagesSent = %d, want 0", stats.MessagesSent)
	}
	if len(stats.BytesReceivedByPair) != 1 {
		t.Fatalf("BytesReceivedByPair = %v", stats.BytesReceivedByPair)
	}
}

// TestExternalStopWithError: a coordinator-propagated abort surfaces as
// Run's error on the member.
func TestExternalStopWithError(t *testing.T) {
	n := NewNetwork()
	n.SetExternal(nil)
	n.AddPeer("a", func(ctx *Context, m Message) {})
	boom := errors.New("remote budget exhausted")
	go n.Stop(boom)
	_, err := n.Run(nil, 5*time.Second)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}
