package dist

import (
	"errors"
	"testing"
	"time"
)

// TestPostRunObservable: after Run returns, Stopped/Err and the state the
// handlers built are readable without extra synchronization (the post-Run
// contract documented on Stopped). Run under -race.
func TestPostRunObservable(t *testing.T) {
	counts := map[string]int{} // written by handlers, read after Run
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		counts["a"]++
		if k := m.Payload.(int); k > 0 {
			ctx.Send("b", k-1)
		}
	})
	n.AddPeer("b", func(ctx *Context, m Message) {
		counts["b"]++
		if k := m.Payload.(int); k > 0 {
			ctx.Send("a", k-1)
		}
	})
	stats, err := n.Run([]Message{{From: "x", To: "a", Payload: 6}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Stopped() {
		t.Fatal("network not stopped after Run")
	}
	if n.Err() != nil {
		t.Fatalf("Err = %v after clean quiescence", n.Err())
	}
	if counts["a"]+counts["b"] != stats.MessagesSent {
		t.Fatalf("handled %d+%d messages, stats say %d", counts["a"], counts["b"], stats.MessagesSent)
	}
}

// TestPostRunErrVisible: an abort error is visible through Err after Run.
func TestPostRunErrVisible(t *testing.T) {
	boom := errors.New("boom")
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) { ctx.Abort(boom) })
	if _, err := n.Run([]Message{{From: "x", To: "a", Payload: 0}}, 5*time.Second); !errors.Is(err, boom) {
		t.Fatalf("Run err = %v", err)
	}
	if !errors.Is(n.Err(), boom) {
		t.Fatalf("Err = %v, want boom", n.Err())
	}
}

// TestLateAbortIsNoOp: a timeout (or any abort) that fires after the
// network already stopped must not overwrite a clean result — the
// guarantee long-lived sessions rely on when their per-round timer races
// with quiescence.
func TestLateAbortIsNoOp(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {})
	if _, err := n.Run([]Message{{From: "x", To: "a", Payload: 0}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	n.abort(ErrTimeout) // the AfterFunc body, firing late
	if n.Err() != nil {
		t.Fatalf("late abort overwrote result: Err = %v", n.Err())
	}
	if !n.Stopped() {
		t.Fatal("network not stopped")
	}
}

// TestReenteredEvaluation: peer state shared across a sequence of
// Networks (one per evaluation round, as a re-entrant engine does) needs
// no locking of its own: Run's return happens-after all handler
// executions, and the next Run's goroutine starts happen-after the state
// mutations between rounds. Run under -race.
func TestReenteredEvaluation(t *testing.T) {
	state := map[int]int{} // shared, unlocked: the contract under test
	for round := 0; round < 5; round++ {
		state[round] = 0 // mutated between rounds, read by handlers
		n := NewNetwork()
		n.AddPeer("a", func(ctx *Context, m Message) {
			state[round] += m.Payload.(int)
			if m.Payload.(int) > 1 {
				ctx.Send("a", m.Payload.(int)-1)
			}
		})
		if _, err := n.Run([]Message{{From: "x", To: "a", Payload: 3}}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if state[round] != 3+2+1 {
			t.Fatalf("round %d: state = %d", round, state[round])
		}
	}
}
