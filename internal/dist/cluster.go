package dist

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file runs a Network as one node of a multi-process cluster. One
// node is the driver: it seeds each evaluation round, runs the
// termination-detection coordinator, and aggregates the round statistics.
// Every other node is a member: it hosts a subset of the peers and reacts
// to messages until the driver stops the round.
//
// Termination is the same message-counting argument the single-process
// Network uses, run over sampled per-node counters (the "standard
// termination detection algorithms" the paper defers to): the coordinator
// polls every node for (messages sent, messages processed, locally idle)
// and declares quiescence after two consecutive waves in which every node
// was idle, the samples did not change between the waves, and the sends
// balance the processings globally. The second wave starts only after all
// first-wave replies arrived, so the constant monotonic counters pin both
// samples to a common instant: nothing was in flight anywhere.

// ErrClusterClosed is returned when a round is started on a closed member.
var ErrClusterClosed = errors.New("dist: cluster endpoint closed")

// ErrRoundPreempted stops a member round when a new job arrives. The
// driver only ships jobs between evaluations, so the round it preempts
// has already ended everywhere else — the member was merely parked in it
// waiting for traffic.
var ErrRoundPreempted = errors.New("dist: round preempted by a new job")

// pollInterval is the coordinator's fallback re-poll period; waves are
// normally triggered by idle notifications, the timer only covers lost
// nudges.
const pollInterval = 5 * time.Millisecond

// doneGrace bounds how long a round waits for member end-of-round reports
// after the evaluation itself has ended.
const doneGrace = 10 * time.Second

// Straggler detection: a node whose mean per-phase latency exceeds
// stragglerFactor× the cluster median — by at least stragglerMinGap, so
// microsecond jitter on fast rounds never qualifies — is reported via the
// driver's structured logger at the end of the round.
const (
	stragglerFactor = 3
	stragglerMinGap = 2 * time.Millisecond
)

// FlowBase derives a node's flow-ID base from its name: a 32-bit FNV-1a
// hash shifted into the top half of the sequence space. Different nodes
// draw from disjoint ranges (barring a hash collision, which costs only a
// confused trace arrow), so flow IDs are unique cluster-wide and the
// send/receive halves of a cross-node hop bind in a merged trace.
func FlowBase(node string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(node))
	return uint64(h.Sum32()) << 32
}

// Driver is the long-lived driver endpoint of a cluster: it owns the
// driver side of the transport and hands out one DriverRound per
// evaluation. Create it with NewDriver (which installs the transport
// handler), ship the job with ShipJob, then install NewRound as the
// evaluator's network factory.
type Driver struct {
	tr     transport.Transport
	nodes  []string
	assign map[PeerID]string
	logger *slog.Logger

	mu      sync.Mutex
	gen     uint64 // current job generation; bumped by every ShipJob
	cur     *DriverRound
	jobOKs  map[string]wire.JobOK
	metrics obs.Registry
}

// NewDriver creates the driver endpoint over tr, coordinating the given
// member nodes, with assign routing each remotely hosted peer to its
// node. It starts the transport.
func NewDriver(tr transport.Transport, nodes []string, assign map[PeerID]string) (*Driver, error) {
	d := &Driver{
		tr:     tr,
		nodes:  append([]string(nil), nodes...),
		assign: assign,
		logger: slog.Default(),
		jobOKs: make(map[string]wire.JobOK),
	}
	if err := tr.Start(d.handle); err != nil {
		return nil, err
	}
	return d, nil
}

// SetLogger installs the structured logger used for cluster health events
// (straggler reports). slog.Default() until set; nil restores it.
func (d *Driver) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.Default()
	}
	d.mu.Lock()
	d.logger = l
	d.mu.Unlock()
}

// SetMetrics installs the registry the driver folds cluster health series
// into: one dist_round_latency_seconds{node,phase} observation per member
// per round (its mean status-reply and done-report latency, as seen from
// the driver) and a dist_straggler_total{node} increment whenever the
// straggler check flags a node. Nil (the default) disables the series;
// the structured straggler log is emitted either way.
func (d *Driver) SetMetrics(reg obs.Registry) {
	d.mu.Lock()
	d.metrics = reg
	d.mu.Unlock()
}

func (d *Driver) handle(from string, f wire.Frame) {
	// Frames of another generation belong to a job that has been
	// superseded (or to a round that died with a restarted node and is
	// being replayed by the transport); they are dropped at the door.
	d.mu.Lock()
	gen := d.gen
	d.mu.Unlock()
	if g, tagged := wire.FrameGen(f); tagged && g != gen {
		return
	}
	if ok, isJobOK := f.(wire.JobOK); isJobOK {
		d.mu.Lock()
		d.jobOKs[from] = ok
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	cur := d.cur
	d.mu.Unlock()
	if cur != nil {
		cur.dispatch(from, f)
	}
	// Frames with no active round are stale (a late Status after the round
	// ended); dropping them is safe — every round starts from fresh state.
}

// ShipJob sends each node its job and waits for every acknowledgement.
// It bumps the cluster's job generation and stamps it into every job:
// from here on, frames of earlier generations are dead to both sides.
func (d *Driver) ShipJob(jobs map[string]wire.Job, timeout time.Duration) error {
	d.mu.Lock()
	d.gen++
	gen := d.gen
	d.jobOKs = make(map[string]wire.JobOK)
	d.mu.Unlock()
	for _, node := range d.nodes {
		job, ok := jobs[node]
		if !ok {
			return fmt.Errorf("dist: no job for node %q", node)
		}
		job.Gen = gen
		if err := d.tr.Send(node, job); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		got := len(d.jobOKs)
		for node, ok := range d.jobOKs {
			if ok.Err != "" {
				d.mu.Unlock()
				return fmt.Errorf("dist: node %q refused job: %s", node, ok.Err)
			}
		}
		d.mu.Unlock()
		if got == len(d.nodes) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: %d of %d nodes acknowledged the job before deadline", got, len(d.nodes))
		}
		time.Sleep(time.Millisecond)
	}
}

// NewRound creates the next evaluation round. Install it as the network
// factory: each call to the evaluator's Run gets a fresh round whose
// unknown-peer sends are routed to their assigned nodes and whose
// termination is decided by the cluster-wide coordinator.
func (d *Driver) NewRound() *DriverRound {
	d.mu.Lock()
	gen := d.gen
	d.mu.Unlock()
	r := &DriverRound{
		d:        d,
		gen:      gen,
		net:      NewNetwork(),
		wake:     make(chan struct{}, 1),
		statuses: make(map[string]wire.Status),
		dones:    make(map[string]wire.Done),
		extras:   make(map[string]uint64),
		statLat:  make(map[string]latSample),
		doneLat:  make(map[string]latSample),
	}
	r.net.SetSeqBase(FlowBase(d.tr.Self()))
	r.net.SetRoute(func(m Message) {
		node, ok := d.assign[m.To]
		if !ok {
			panic(fmt.Sprintf("dist: peer %q hosted nowhere (not local, not assigned)", m.To))
		}
		if err := d.tr.Send(node, wire.Data{Gen: r.gen, Flow: m.Flow(), From: string(m.From), To: string(m.To), Payload: m.Payload.(wire.Payload)}); err != nil {
			// The transport is closing; the round is ending anyway.
			r.net.Stop(err)
		}
	})
	r.net.SetExternal(r.wakeUp)
	return r
}

// DriverRound is one cluster-wide evaluation: a dist.Net whose Run seeds
// the cluster, detects global quiescence, stops every member, and folds
// the members' statistics into its own.
type DriverRound struct {
	d   *Driver
	gen uint64 // job generation the round belongs to
	net *Network

	wake chan struct{}

	mu        sync.Mutex
	epoch     uint64
	statuses  map[string]wire.Status
	dones     map[string]wire.Done
	stopSent  bool
	stopAt    time.Time // when the stop broadcast went out
	waveAt    time.Time // when the current wave's polls went out
	extras    map[string]uint64
	telemetry []wire.Telemetry
	statLat   map[string]latSample // per node: Poll→Status reply latency
	doneLat   map[string]latSample // per node: Stop→Done report latency
	memErr    error
}

// latSample accumulates one node's latency observations for one phase.
type latSample struct {
	sum time.Duration
	n   int
}

// AddPeer registers a locally hosted peer.
func (r *DriverRound) AddPeer(id PeerID, h Handler) { r.net.AddPeer(id, h) }

// SetTracer forwards the tracer to the local network.
func (r *DriverRound) SetTracer(t obs.Tracer) { r.net.SetTracer(t) }

func (r *DriverRound) wakeUp() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *DriverRound) dispatch(from string, f wire.Frame) {
	switch fr := f.(type) {
	case wire.Data:
		m := Message{From: PeerID(fr.From), To: PeerID(fr.To), Payload: fr.Payload}
		m.SetFlow(fr.Flow)
		r.net.Inject(m)
	case wire.Status:
		r.mu.Lock()
		if fr.Epoch != 0 && fr.Epoch == r.epoch {
			r.statuses[from] = fr
			if !r.waveAt.IsZero() {
				s := r.statLat[from]
				s.sum += time.Since(r.waveAt)
				s.n++
				r.statLat[from] = s
			}
		}
		r.mu.Unlock()
		r.wakeUp()
	case wire.Telemetry:
		r.mu.Lock()
		r.telemetry = append(r.telemetry, fr)
		r.mu.Unlock()
	case wire.Done:
		r.mu.Lock()
		if _, dup := r.dones[from]; !dup {
			r.dones[from] = fr
			if !r.stopAt.IsZero() {
				s := r.doneLat[from]
				s.sum += time.Since(r.stopAt)
				s.n++
				r.doneLat[from] = s
			}
		}
		early := !r.stopSent
		r.mu.Unlock()
		if early {
			// A member ended the round unilaterally (budget abort, member
			// timeout): end it everywhere.
			if fr.Err != "" {
				r.fail(errors.New(fr.Err))
			} else {
				r.fail(errors.New("dist: member finished round early"))
			}
		}
		r.wakeUp()
	}
}

// fail records the first member-reported error and stops the local net.
func (r *DriverRound) fail(err error) {
	r.mu.Lock()
	if r.memErr == nil {
		r.memErr = err
	}
	r.mu.Unlock()
	r.net.Stop(err)
}

// Run seeds the round (remote seeds route through the transport), runs
// the coordinator until the cluster quiesces, stops every member, and
// returns the cluster-wide statistics: the local run's stats plus every
// member's reported share.
func (r *DriverRound) Run(initial []Message, timeout time.Duration) (Stats, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	d := r.d
	d.mu.Lock()
	d.cur = r
	d.mu.Unlock()

	coordDone := make(chan struct{})
	coordStop := make(chan struct{})
	go func() {
		defer close(coordDone)
		r.coordinate(coordStop)
	}()

	stats, err := r.net.Run(initial, timeout)

	close(coordStop)
	<-coordDone
	r.broadcastStop(err)

	derr := r.collectDones(timeout)
	d.mu.Lock()
	d.cur = nil
	d.mu.Unlock()

	r.mu.Lock()
	if err == nil {
		err = r.memErr
	}
	if err == nil {
		err = derr
	}
	for _, done := range r.dones {
		stats.MessagesSent += int(done.Sent)
		for _, pc := range done.Processed {
			stats.Processed[PeerID(pc.Peer)] += int(pc.Count)
		}
		for _, pc := range done.ByPair {
			stats.MessagesByPair[Pair{From: PeerID(pc.From), To: PeerID(pc.To)}] += int(pc.Count)
		}
		for _, pc := range done.BytesSent {
			stats.BytesSentByPair[Pair{From: PeerID(pc.From), To: PeerID(pc.To)}] += int(pc.Count)
		}
		for _, kv := range done.Extras {
			r.extras[kv.Key] += kv.Val
		}
	}
	r.mu.Unlock()
	r.reportStragglers()
	return stats, err
}

// RoundLatency is one node's driver-observed latency summary for one
// phase of one round: the mean of its samples, the cluster median of the
// per-node means it was judged against, and whether the straggler check
// flagged it. Two phases are measured per round: how fast a node answers
// quiescence polls (status-reply) and how fast it files its end-of-round
// report after the stop broadcast (done-report).
type RoundLatency struct {
	Node      string
	Phase     string // "status-reply" or "done-report"
	Mean      time.Duration
	Samples   int
	Median    time.Duration // zero when fewer than two nodes reported
	Straggler bool
}

// RoundLatencies returns the round's per-node latency summary, sorted by
// phase then node. Meaningful once the round has ended (Run returned);
// callers fold it into cluster-level telemetry.
func (r *DriverRound) RoundLatencies() []RoundLatency {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latencySummaryLocked()
}

// latencySummaryLocked folds the raw per-phase samples into per-node
// means and straggler flags: a node is a straggler when its mean exceeds
// stragglerFactor× the cluster median by at least stragglerMinGap (so
// microsecond jitter on fast rounds never qualifies), judged only when at
// least two nodes reported. Caller holds r.mu.
func (r *DriverRound) latencySummaryLocked() []RoundLatency {
	var out []RoundLatency
	phases := []struct {
		name    string
		perNode map[string]latSample
	}{
		{"status-reply", r.statLat},
		{"done-report", r.doneLat},
	}
	for _, ph := range phases {
		nodes := make([]string, 0, len(ph.perNode))
		means := make(map[string]time.Duration, len(ph.perNode))
		all := make([]time.Duration, 0, len(ph.perNode))
		for node, s := range ph.perNode {
			if s.n == 0 {
				continue
			}
			m := s.sum / time.Duration(s.n)
			nodes = append(nodes, node)
			means[node] = m
			all = append(all, m)
		}
		sort.Strings(nodes)
		var median time.Duration
		judged := len(all) >= 2 // a median over one node flags nothing
		if judged {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			median = all[len(all)/2]
		}
		for _, node := range nodes {
			mean := means[node]
			out = append(out, RoundLatency{
				Node:      node,
				Phase:     ph.name,
				Mean:      mean,
				Samples:   ph.perNode[node].n,
				Median:    median,
				Straggler: judged && mean > stragglerFactor*median && mean-median > stragglerMinGap,
			})
		}
	}
	return out
}

// reportStragglers emits the end-of-round latency summary: one
// dist_round_latency_seconds{node,phase} observation per node into the
// driver's metrics registry, a dist_straggler_total{node} increment plus
// a structured warning for every flagged node.
func (r *DriverRound) reportStragglers() {
	r.d.mu.Lock()
	logger := r.d.logger
	metrics := r.d.metrics
	r.d.mu.Unlock()
	r.mu.Lock()
	summary := r.latencySummaryLocked()
	r.mu.Unlock()
	for _, l := range summary {
		if metrics != nil {
			metrics.Observe(fmt.Sprintf("dist_round_latency_seconds{node=%q,phase=%q}", l.Node, l.Phase), l.Mean)
		}
		if !l.Straggler {
			continue
		}
		logger.Warn("dist: straggler detected",
			"node", l.Node,
			"phase", l.Phase,
			"gen", r.gen,
			"mean_ms", float64(l.Mean)/float64(time.Millisecond),
			"median_ms", float64(l.Median)/float64(time.Millisecond),
			"samples", l.Samples,
		)
		if metrics != nil {
			metrics.Add(fmt.Sprintf("dist_straggler_total{node=%q}", l.Node), 1)
		}
	}
}

// ClusterTelemetry returns the telemetry frames the members shipped during
// the round (per-round trace-event batches, cumulative engine counters,
// runtime gauges), in arrival order. Valid after Run returns: members send
// their sample before the Done report the round waits for, and the
// transport preserves per-sender FIFO, so every sample of the round has
// arrived by then.
func (r *DriverRound) ClusterTelemetry() []wire.Telemetry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]wire.Telemetry(nil), r.telemetry...)
}

// ClusterExtras returns the evaluator-defined extras summed over every
// member's end-of-round report. Valid after Run returns.
func (r *DriverRound) ClusterExtras() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.extras))
	for k, v := range r.extras {
		out[k] = v
	}
	return out
}

// broadcastStop tells every member the round is over (idempotent).
func (r *DriverRound) broadcastStop(err error) {
	r.mu.Lock()
	if r.stopSent {
		r.mu.Unlock()
		return
	}
	r.stopSent = true
	r.stopAt = time.Now()
	r.mu.Unlock()
	msg := wire.Stop{Gen: r.gen}
	if err != nil {
		msg.Err = err.Error()
	}
	for _, node := range r.d.nodes {
		r.d.tr.Send(node, msg) //nolint:errcheck // closing transport ends the round anyway
	}
}

// collectDones waits for every member's end-of-round report.
func (r *DriverRound) collectDones(timeout time.Duration) error {
	if timeout < doneGrace {
		timeout = doneGrace
	}
	deadline := time.After(timeout)
	for {
		r.mu.Lock()
		got := len(r.dones)
		r.mu.Unlock()
		if got == len(r.d.nodes) {
			return nil
		}
		select {
		case <-r.wake:
		case <-deadline:
			return fmt.Errorf("dist: %d of %d members reported before deadline", got, len(r.d.nodes))
		}
	}
}

// nodeCount is one node's counter sample within a wave.
type nodeCount struct {
	node      string
	sent      uint64
	processed uint64
}

// coordinate runs quiescence waves until two consecutive all-idle waves
// sample identical, globally balanced counters, then stops the round.
func (r *DriverRound) coordinate(stop <-chan struct{}) {
	var prev []nodeCount
	epoch := uint64(0)
	for {
		select {
		case <-stop:
			return
		case <-r.wake:
		case <-time.After(pollInterval):
		}
		epoch++
		r.mu.Lock()
		r.epoch = epoch
		r.statuses = make(map[string]wire.Status)
		r.waveAt = time.Now()
		r.mu.Unlock()
		for _, node := range r.d.nodes {
			if err := r.d.tr.Send(node, wire.Poll{Gen: r.gen, Epoch: epoch}); err != nil {
				return
			}
		}
		if !r.awaitStatuses(stop, epoch) {
			return
		}
		wave := r.waveVector()
		if wave != nil && prev != nil && wavesEqual(prev, wave) && balanced(wave) {
			r.broadcastStop(nil)
			r.net.Stop(nil)
			return
		}
		prev = wave
	}
}

// awaitStatuses blocks until every member replied to the given epoch.
// Returns false if the round was stopped first.
func (r *DriverRound) awaitStatuses(stop <-chan struct{}, epoch uint64) bool {
	for {
		r.mu.Lock()
		got := len(r.statuses)
		r.mu.Unlock()
		if got == len(r.d.nodes) {
			return true
		}
		if r.net.Stopped() {
			return false
		}
		select {
		case <-stop:
			return false
		case <-r.wake:
		case <-time.After(pollInterval):
		}
	}
}

// waveVector assembles the wave's per-node samples (members first, the
// driver's own network last). It returns nil unless every node — this one
// included — was idle at its sample.
func (r *DriverRound) waveVector() []nodeCount {
	r.mu.Lock()
	statuses := r.statuses
	r.mu.Unlock()
	wave := make([]nodeCount, 0, len(statuses)+1)
	for _, node := range r.d.nodes {
		st, ok := statuses[node]
		if !ok || !st.Idle {
			return nil
		}
		wave = append(wave, nodeCount{node: node, sent: st.Sent, processed: st.Processed})
	}
	// The driver samples itself after every reply arrived, so its counters
	// are at least as fresh as the members'.
	sent, processed, idle := r.net.Counters()
	if !idle {
		return nil
	}
	wave = append(wave, nodeCount{node: "", sent: sent, processed: processed})
	return wave
}

func wavesEqual(a, b []nodeCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// balanced reports Σsent == Σprocessed over the wave: combined with two
// identical all-idle waves, no message is in flight anywhere.
func balanced(wave []nodeCount) bool {
	var sent, processed uint64
	for _, n := range wave {
		sent += n.sent
		processed += n.processed
	}
	return sent == processed
}

// Member is the long-lived member endpoint of one cluster node. Create it
// with NewMember (which installs the transport handler), receive the job
// from Jobs, set the peer assignment, then loop: NextRound → run the
// evaluator on it → Finish.
type Member struct {
	tr     transport.Transport
	driver string
	jobs   chan wire.Job

	mu       sync.Mutex
	assign   map[PeerID]string
	gen      uint64 // generation of the current job
	rejoined bool   // restored from a checkpoint into gen; round state lost
	notified bool   // rejoin Done already sent for this restoration
	cur      *MemberRound
	backlog  []queuedFrame
	closed   bool
}

type queuedFrame struct {
	from string
	f    wire.Frame
}

// NewMember creates the member endpoint over tr, reporting to the named
// driver node. It starts the transport.
func NewMember(tr transport.Transport, driver string) (*Member, error) {
	m := &Member{tr: tr, driver: driver, jobs: make(chan wire.Job, 1)}
	if err := tr.Start(m.handle); err != nil {
		return nil, err
	}
	return m, nil
}

// Jobs delivers the jobs the driver ships. The channel is closed by Close.
func (m *Member) Jobs() <-chan wire.Job { return m.jobs }

// SetAssign installs the cluster's peer→node map, used to route sends to
// peers hosted on other nodes (peers absent from the map route to the
// driver — that is where synthetic peers like the collector live). Must
// be set before the first round.
func (m *Member) SetAssign(assign map[PeerID]string) {
	m.mu.Lock()
	m.assign = assign
	m.mu.Unlock()
}

// SendJobOK acknowledges the job of generation gen to the driver; errText
// non-empty refuses it.
func (m *Member) SendJobOK(gen uint64, errText string) error {
	return m.tr.Send(m.driver, wire.JobOK{Gen: gen, Node: m.tr.Self(), Err: errText})
}

// Rejoin marks the member as restarted from a checkpoint taken in job
// generation gen. The in-memory state of any round of that generation
// died with the previous process, so the member must not take part in it:
// the first frame of that generation triggers an end-of-round error
// report telling the driver to stop the round and re-ship, and every such
// frame is dropped. A newly shipped job (a later generation) leaves
// rejoin mode.
func (m *Member) Rejoin(gen uint64) {
	m.mu.Lock()
	m.gen = gen
	m.rejoined = true
	m.notified = false
	m.mu.Unlock()
}

func (m *Member) handle(from string, f wire.Frame) {
	if job, isJob := f.(wire.Job); isJob {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		var cur *MemberRound
		accepted := false
		select {
		case m.jobs <- job:
			accepted = true
			cur = m.cur
			m.gen = job.Gen
			m.rejoined = false
		default:
		}
		m.mu.Unlock()
		if !accepted {
			m.SendJobOK(job.Gen, "member busy with a previous job") //nolint:errcheck
		} else if cur != nil {
			cur.net.Stop(ErrRoundPreempted)
		}
		return
	}
	gen, tagged := wire.FrameGen(f)
	m.mu.Lock()
	if tagged && gen != m.gen {
		// Another generation's frame: a transport replay from a round that
		// was superseded. Every round of the current generation starts
		// from state the driver also has, so dropping is safe.
		m.mu.Unlock()
		return
	}
	if m.rejoined && m.cur == nil {
		// A current-generation frame, but this process restored the
		// generation from a checkpoint: the round the frame belongs to
		// died with the previous process. Tell the driver once (ending
		// the round with a clear error instead of a timeout), drop the
		// frame either way.
		notify := !m.notified
		m.notified = true
		m.mu.Unlock()
		if notify {
			m.tr.Send(m.driver, wire.Done{Gen: gen, Err: "member restarted from checkpoint; round state lost"}) //nolint:errcheck
		}
		return
	}
	cur := m.cur
	if cur == nil {
		if !m.closed {
			// No round is active (the member is between rounds); hold the
			// frame for the next round so nothing is lost across the gap.
			m.backlog = append(m.backlog, queuedFrame{from: from, f: f})
		}
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	cur.dispatch(from, f)
}

// Close shuts the member down: the current round (if any) is stopped, the
// job channel is closed, and the transport is closed.
func (m *Member) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	cur := m.cur
	m.mu.Unlock()
	close(m.jobs)
	if cur != nil {
		cur.net.Stop(ErrClusterClosed)
	}
	return m.tr.Close()
}

// NextRound creates the member side of the next evaluation round. The
// round is pinned to the current job generation: every frame it sends
// carries it, so a driver that has since re-shipped ignores stragglers.
func (m *Member) NextRound() *MemberRound {
	m.mu.Lock()
	gen := m.gen
	m.mu.Unlock()
	r := &MemberRound{m: m, gen: gen, net: NewNetwork()}
	r.net.SetSeqBase(FlowBase(m.tr.Self()))
	r.net.SetRoute(func(msg Message) {
		m.mu.Lock()
		node, ok := m.assign[msg.To]
		m.mu.Unlock()
		if !ok {
			node = m.driver
		}
		if err := m.tr.Send(node, wire.Data{Gen: r.gen, Flow: msg.Flow(), From: string(msg.From), To: string(msg.To), Payload: msg.Payload.(wire.Payload)}); err != nil {
			r.net.Stop(err)
		}
	})
	r.net.SetExternal(func() {
		// An unsolicited epoch-0 status nudges the coordinator to start a
		// wave. Runs under the network lock: Counters would deadlock, and
		// the nudge carries no sample — the coordinator polls for one.
		m.tr.Send(m.driver, wire.Status{Gen: r.gen, Epoch: 0, Idle: true}) //nolint:errcheck
	})
	return r
}

// MemberRound is one round's member side: a dist.Net whose Run reacts to
// routed messages until the driver (or a local failure) stops the round.
type MemberRound struct {
	m   *Member
	gen uint64 // job generation the round belongs to
	net *Network

	stats Stats
	err   error
}

// AddPeer registers a locally hosted peer.
func (r *MemberRound) AddPeer(id PeerID, h Handler) { r.net.AddPeer(id, h) }

// SetTracer forwards the tracer to the local network.
func (r *MemberRound) SetTracer(t obs.Tracer) { r.net.SetTracer(t) }

func (r *MemberRound) dispatch(from string, f wire.Frame) {
	switch fr := f.(type) {
	case wire.Data:
		m := Message{From: PeerID(fr.From), To: PeerID(fr.To), Payload: fr.Payload}
		m.SetFlow(fr.Flow)
		r.net.Inject(m)
	case wire.Poll:
		sent, processed, idle := r.net.Counters()
		r.m.tr.Send(r.m.driver, wire.Status{Gen: r.gen, Epoch: fr.Epoch, Sent: sent, Processed: processed, Idle: idle}) //nolint:errcheck
	case wire.Stop:
		if fr.Err != "" {
			r.net.Stop(errors.New(fr.Err))
		} else {
			r.net.Stop(nil)
		}
	}
}

// Run blocks until the driver stops the round (or the timeout trips).
// initial must be empty: rounds are seeded by the driver.
func (r *MemberRound) Run(initial []Message, timeout time.Duration) (Stats, error) {
	if len(initial) != 0 {
		panic("dist: member rounds take no seeds")
	}
	m := r.m
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Stats{}, ErrClusterClosed
	}
	if len(m.jobs) > 0 {
		// A fresh job is already waiting: don't park in a round the driver
		// has abandoned.
		m.mu.Unlock()
		return Stats{}, ErrRoundPreempted
	}
	// Frames that arrived between rounds are replayed before live dispatch
	// resumes. The replay holds m.mu — handle() blocks on it — so a frame
	// arriving mid-replay cannot overtake its sender's backlogged frames;
	// dispatch only takes other locks (the round's network, the transport),
	// never m.mu again. Frames backlogged under an earlier generation are
	// dropped: a job shipped after they arrived has superseded their round.
	for _, q := range m.backlog {
		if g, tagged := wire.FrameGen(q.f); tagged && g != r.gen {
			continue
		}
		r.dispatch(q.from, q.f)
	}
	m.backlog = nil
	m.cur = r
	m.mu.Unlock()

	stats, err := r.net.Run(nil, timeout)

	m.mu.Lock()
	if m.cur == r {
		m.cur = nil
	}
	m.mu.Unlock()
	r.stats, r.err = stats, err
	return stats, err
}

// SendTelemetry ships an observability sample to the driver, stamped with
// the round's generation and this node's name. Call it after Run returned
// and before Finish: the driver's round is still collecting then, and the
// per-sender FIFO transport guarantees the sample lands before the Done
// report the driver waits for.
func (r *MemberRound) SendTelemetry(t wire.Telemetry) error {
	t.Gen = r.gen
	t.Node = r.m.tr.Self()
	return r.m.tr.Send(r.m.driver, t)
}

// Finish sends the member's end-of-round report to the driver. Call it
// after Run returned; extras carries evaluator counters (e.g. facts
// derived on this node) for the driver to aggregate.
func (r *MemberRound) Finish(extras map[string]uint64) error {
	done := wire.Done{Gen: r.gen, Sent: uint64(r.stats.MessagesSent)}
	if r.err != nil && !errors.Is(r.err, ErrClusterClosed) {
		done.Err = r.err.Error()
	}
	peers := make([]string, 0, len(r.stats.Processed))
	for id := range r.stats.Processed {
		peers = append(peers, string(id))
	}
	sort.Strings(peers)
	for _, p := range peers {
		done.Processed = append(done.Processed, wire.PeerCount{Peer: p, Count: uint64(r.stats.Processed[PeerID(p)])})
	}
	done.ByPair = pairCounts(r.stats.MessagesByPair)
	done.BytesSent = pairCounts(r.stats.BytesSentByPair)
	keys := make([]string, 0, len(extras))
	for k := range extras {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		done.Extras = append(done.Extras, wire.KV{Key: k, Val: extras[k]})
	}
	return r.m.tr.Send(r.m.driver, done)
}

// pairCounts flattens a per-pair counter map in deterministic order.
func pairCounts(m map[Pair]int) []wire.PairCount {
	pairs := make([]Pair, 0, len(m))
	for p := range m {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].From != pairs[j].From {
			return pairs[i].From < pairs[j].From
		}
		return pairs[i].To < pairs[j].To
	})
	out := make([]wire.PairCount, len(pairs))
	for i, p := range pairs {
		out[i] = wire.PairCount{From: string(p.From), To: string(p.To), Count: uint64(m[p])}
	}
	return out
}
