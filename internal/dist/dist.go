// Package dist provides the asynchronous peer-to-peer runtime used by the
// distributed evaluators: peer handlers scheduled onto a worker pool sized
// by GOMAXPROCS (see SetWorkers), asynchronous message delivery that
// preserves per-sender FIFO order (the only ordering guarantee the paper's
// model assumes — Section 2, "for each individual peer the relative order
// of its alarms ... respects the order in which they were sent"), and
// distributed termination detection. A peer is owned by at most one worker
// at a time and its queue is filled in send order, so the per-peer,
// per-sender delivery order is identical to the historical
// one-goroutine-per-peer runtime — and evaluation being monotone and
// confluent, so are the results.
//
// Termination ("the system reaches a fixpoint when no new relation may be
// activated and no new fact derived at any peer", Section 3.2) is detected
// by message counting: the network is quiescent exactly when every peer is
// blocked waiting for input and no message is in flight. Within one process
// the count is maintained under a single lock and detection is exact — this
// stands in for the "standard termination detection algorithms for
// distributed computing" the paper cites [19, 33].
//
// A Network can also run as one node of a multi-process cluster (see
// cluster.go): SetRoute diverts messages addressed to peers hosted
// elsewhere, Inject delivers messages that arrived from other nodes, and
// SetExternal switches off local self-termination so a cluster-wide
// message-counting coordinator (the same counting argument, run over
// sampled per-node counters) decides quiescence instead.
package dist

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Net is the runtime surface the evaluators program against: a closed set
// of peers exchanging asynchronous messages until quiescence. *Network is
// the single-process implementation; the cluster rounds in cluster.go
// implement it over a transport.
type Net interface {
	AddPeer(PeerID, Handler)
	SetTracer(obs.Tracer)
	Run(initial []Message, timeout time.Duration) (Stats, error)
}

// PeerID names a peer.
type PeerID string

// Message is an asynchronous message between peers. Payload is
// evaluator-defined; the runtime never inspects it.
type Message struct {
	From    PeerID
	To      PeerID
	Payload any

	// seq is the network-wide send sequence number, correlating the
	// send-side and delivery-side trace events of one hop.
	seq uint64

	// size is the wire-encoded payload size in bytes (0 for payloads the
	// wire codec does not know), charged to BytesReceivedByPair when the
	// message finishes processing.
	size int
}

// Handler processes one message on behalf of a peer. It runs on the peer's
// goroutine; messages to a peer are handled one at a time, in per-sender
// FIFO order. The handler may send further messages through ctx.
type Handler func(ctx *Context, m Message)

// Context is a peer's interface to the network during message handling.
type Context struct {
	net  *Network
	self PeerID
}

// Self returns the identity of the handling peer.
func (c *Context) Self() PeerID { return c.self }

// Send delivers payload to the given peer asynchronously.
func (c *Context) Send(to PeerID, payload any) {
	c.net.send(Message{From: c.self, To: to, Payload: payload})
}

// Abort stops the whole network; Run returns err.
func (c *Context) Abort(err error) {
	c.net.abort(err)
}

// Stopped reports whether the network has been aborted or has quiesced.
// Long-running handlers should poll it and bail out: an abort stops
// message delivery but cannot interrupt a handler.
func (c *Context) Stopped() bool {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.net.stopped
}

// Pair names a directed sender→receiver channel.
type Pair struct {
	From PeerID
	To   PeerID
}

// Stats summarizes a network run.
type Stats struct {
	MessagesSent int
	Processed    map[PeerID]int // messages handled per peer
	// MessagesByPair counts sends per (sender, receiver) channel; the
	// values sum to MessagesSent (initial seed messages count under their
	// synthetic sender).
	MessagesByPair map[Pair]int
	// BytesSentByPair and BytesReceivedByPair count the wire-encoded
	// payload bytes per channel — the same figure whether the message
	// stays in-process or crosses a socket, so byte costs measured
	// in-proc predict network traffic exactly. Payload types unknown to
	// the wire codec (only found in toy tests) count zero bytes.
	BytesSentByPair     map[Pair]int
	BytesReceivedByPair map[Pair]int
	Elapsed             time.Duration
}

// ErrTimeout is returned by Run when the deadline passes before quiescence.
var ErrTimeout = errors.New("dist: network did not quiesce before deadline")

// peer scheduling states: idle (empty queue, not scheduled), ready (queued
// messages, waiting for a worker), running (owned by a worker).
const (
	pIdle = iota
	pReady
	pRunning
)

type peer struct {
	id      PeerID
	handler Handler
	queue   []Message
	state   int
	ctx     Context
}

// Network is a closed set of peers exchanging asynchronous messages.
// Configure with AddPeer, then call Run exactly once.
type Network struct {
	mu       sync.Mutex
	cond     *sync.Cond
	peers    map[PeerID]*peer
	order    []PeerID
	ready    []*peer // peers with queued messages awaiting a worker
	workers  int     // pool width; 0 = GOMAXPROCS
	inflight int     // messages sent but not yet fully processed
	stopped  bool
	err      error
	stats    Stats
	seq      uint64     // send sequence number (trace flow IDs)
	tracer   obs.Tracer // never nil; obs.Nop by default

	// cluster-member state (see SetRoute / SetExternal / Inject).
	route    func(Message) // non-nil: messages to unknown peers go here
	external bool          // true: local quiescence does not stop the run
	notify   func()        // fired on each transition into local idleness
	wasIdle  bool          // suppresses duplicate notify calls
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	n := &Network{peers: make(map[PeerID]*peer), tracer: obs.Nop}
	n.cond = sync.NewCond(&n.mu)
	n.stats.Processed = make(map[PeerID]int)
	n.stats.MessagesByPair = make(map[Pair]int)
	n.stats.BytesSentByPair = make(map[Pair]int)
	n.stats.BytesReceivedByPair = make(map[Pair]int)
	return n
}

// SetWorkers fixes the worker-pool width: up to w peer handlers run
// concurrently. w <= 0 restores the default, a pool sized by GOMAXPROCS
// (capped at the peer count); w == 1 reproduces fully sequential delivery.
// Must be called before Run.
func (n *Network) SetWorkers(w int) {
	n.workers = w
}

// SetRoute diverts messages addressed to peers this network does not host:
// instead of panicking on an unknown destination, send hands the message
// (already counted in MessagesSent/MessagesByPair/BytesSentByPair) to
// route. route is called outside the network lock, sequentially per
// sending peer — so a FIFO-per-destination transport preserves the
// per-sender ordering guarantee across nodes. Must be set before Run.
func (n *Network) SetRoute(route func(Message)) {
	n.route = route
}

// SetExternal makes this network one member of a larger cluster: local
// quiescence (every hosted peer idle, nothing in flight locally) no longer
// stops the run — messages may still arrive via Inject — and notify fires
// on each transition into local idleness so the member can report a
// counter sample to the cluster's termination coordinator. notify runs
// under the network lock: it must not block and must not call back into
// the network (a transport enqueue is fine). The run then ends only via
// Stop or timeout. Must be set before Run.
func (n *Network) SetExternal(notify func()) {
	n.external = true
	n.notify = notify
}

// SetSeqBase offsets this network's message sequence numbers (trace flow
// IDs) by base. Cluster nodes seed disjoint bases derived from their node
// names, making flow IDs unique cluster-wide — the property that lets a
// send arrow recorded on one node bind to the handle recorded on another
// when per-node traces are merged. Must be called before Run.
func (n *Network) SetSeqBase(base uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq = base
}

// Inject delivers a message that arrived from another node of the
// cluster. The destination must be hosted here (cluster peer assignments
// are static, so a miss is a routing bug). Unlike send it does not count
// toward MessagesSent — the sending node counted it — but it does count
// toward Processed and BytesReceivedByPair when handled, which is what
// makes the cluster-wide counting argument (Σsent == Σprocessed over all
// nodes ⇒ nothing in flight) come out exact.
//
// A message carrying the sender's flow ID (SetFlow) keeps it, and no
// send-side flow event is recorded here: the true sender already recorded
// one, and reusing its ID lets the merged cluster trace draw the arrow
// across processes. Without an ID, a fresh local one is assigned and the
// send half is synthesized locally (the pre-v4 behavior, which keeps
// single-node traces whole when the remote side recorded nothing).
func (n *Network) Inject(m Message) {
	size, _ := wire.PayloadSize(m.Payload)
	preset := m.seq != 0
	n.mu.Lock()
	p, ok := n.peers[m.To]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("dist: inject for peer %q not hosted here", m.To))
	}
	if n.stopped {
		n.mu.Unlock()
		return // late deliveries during shutdown are dropped
	}
	n.inflight++
	if !preset {
		n.seq++
		m.seq = n.seq
	}
	m.size = size
	n.enqueueLocked(p, m)
	n.mu.Unlock()
	if !preset {
		n.tracer.FlowBegin(string(m.From), "msg", m.seq)
	}
}

// enqueueLocked appends m to p's queue and schedules p onto the ready list
// if no worker owns it yet. Caller holds n.mu.
func (n *Network) enqueueLocked(p *peer, m Message) {
	p.queue = append(p.queue, m)
	n.wasIdle = false
	if p.state == pIdle {
		p.state = pReady
		n.ready = append(n.ready, p)
		n.cond.Signal()
	}
}

// SetFlow stamps a message with the flow ID its sender assigned on
// another node, for Inject.
func (m *Message) SetFlow(id uint64) { m.seq = id }

// Flow returns the message's flow ID (0 before the network assigns one).
func (m Message) Flow() uint64 { return m.seq }

// Counters samples this node's share of the cluster-wide message counts:
// messages its peers have sent (local or remote destinations alike),
// messages fully processed here, and whether the node is locally idle.
// The two-wave coordinator terminates the cluster when consecutive waves
// sample identical, globally balanced counters from idle nodes.
func (n *Network) Counters() (sent, processed uint64, idle bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var pr int
	for _, c := range n.stats.Processed {
		pr += c
	}
	return uint64(n.stats.MessagesSent), uint64(pr), n.quiescentLocked() || n.stopped
}

// Stop stops the network from outside a handler: nil err records clean
// (cluster-decided) quiescence, non-nil aborts the run with that error.
// Safe from any goroutine; a second stop is a no-op.
func (n *Network) Stop(err error) {
	n.abort(err)
}

// SetTracer installs the network's tracer (obs.Nop when t is nil). Must
// be called before Run; the default no-op tracer costs nothing on the
// message-dispatch hot path.
func (n *Network) SetTracer(t obs.Tracer) {
	n.tracer = obs.Or(t)
}

// AddPeer registers a peer. It panics if the ID is taken or the network has
// started.
func (n *Network) AddPeer(id PeerID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		panic("dist: AddPeer after Run")
	}
	if _, ok := n.peers[id]; ok {
		panic(fmt.Sprintf("dist: duplicate peer %q", id))
	}
	p := &peer{id: id, handler: h}
	p.ctx = Context{net: n, self: id}
	n.peers[id] = p
	n.order = append(n.order, id)
}

// Peers returns the registered peer IDs in registration order.
func (n *Network) Peers() []PeerID {
	out := make([]PeerID, len(n.order))
	copy(out, n.order)
	return out
}

func (n *Network) send(m Message) {
	size, _ := wire.PayloadSize(m.Payload)
	n.mu.Lock()
	p, ok := n.peers[m.To]
	if !ok && n.route == nil {
		n.mu.Unlock()
		panic(fmt.Sprintf("dist: send to unknown peer %q", m.To))
	}
	if n.stopped {
		n.mu.Unlock()
		return // late sends during shutdown are dropped
	}
	n.stats.MessagesSent++
	n.stats.MessagesByPair[Pair{From: m.From, To: m.To}]++
	if size > 0 {
		n.stats.BytesSentByPair[Pair{From: m.From, To: m.To}] += size
	}
	n.seq++
	m.seq = n.seq
	m.size = size
	if !ok {
		// The destination lives on another node: counted as sent here,
		// processed wherever it lands. Routed outside the lock — the
		// sender's handler runs sequentially, so its sends still reach
		// the transport in order.
		n.mu.Unlock()
		n.tracer.FlowBegin(string(m.From), "msg", m.seq)
		n.route(m)
		return
	}
	n.inflight++
	n.enqueueLocked(p, m)
	n.mu.Unlock()
	n.tracer.FlowBegin(string(m.From), "msg", m.seq)
}

func (n *Network) abort(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.stopped {
		n.stopped = true
		if n.err == nil {
			n.err = err
		}
		n.cond.Broadcast()
	}
}

// workerLoop is one worker of the pool: claim a ready peer, drain its
// queue (handlers run outside the lock), release it, repeat. Because a
// peer is owned by exactly one worker from claim to release, its messages
// are handled one at a time in queue order — the per-sender FIFO guarantee
// of the one-goroutine-per-peer runtime, at pool-bounded concurrency.
func (n *Network) workerLoop() {
	tr := n.tracer
	n.mu.Lock()
	for {
		for len(n.ready) == 0 && !n.stopped {
			if n.quiescentLocked() {
				// A standalone network stops itself here; a member fires
				// notify (once per idle transition) and keeps waiting.
				n.quiesceLocked()
				if n.stopped {
					break
				}
			}
			n.cond.Wait()
		}
		if n.stopped {
			break
		}
		p := n.ready[0]
		n.ready = n.ready[1:]
		p.state = pRunning
		for len(p.queue) > 0 && !n.stopped {
			m := p.queue[0]
			p.queue = p.queue[1:]
			n.mu.Unlock()
			if tr.Enabled() {
				tr.FlowEnd(string(p.id), "msg", m.seq)
				sp := tr.Begin(string(p.id), fmt.Sprintf("handle %T", m.Payload))
				p.handler(&p.ctx, m)
				sp.End()
			} else {
				p.handler(&p.ctx, m)
			}
			n.mu.Lock()
			n.inflight--
			n.stats.Processed[p.id]++
			if m.size > 0 {
				n.stats.BytesReceivedByPair[Pair{From: m.From, To: m.To}] += m.size
			}
		}
		p.state = pIdle
		if n.quiescentLocked() {
			n.quiesceLocked()
		}
	}
	n.mu.Unlock()
}

// quiescentLocked reports local quiescence: nothing in flight — every sent
// message has been fully handled, so no peer has queued work and no
// handler is running. Caller holds n.mu.
func (n *Network) quiescentLocked() bool {
	return n.inflight == 0
}

// quiesceLocked reacts to local quiescence: a standalone network stops
// itself (detection is exact in-process); a cluster member instead fires
// notify once per idle transition and keeps running — remote messages may
// still arrive, and only the cluster coordinator may declare the end.
// Caller holds n.mu.
func (n *Network) quiesceLocked() {
	if !n.external {
		n.stopped = true
		n.cond.Broadcast()
		return
	}
	if !n.wasIdle {
		n.wasIdle = true
		if n.notify != nil {
			n.notify()
		}
	}
}

// Stopped reports whether the network has stopped (quiesced, aborted, or
// timed out). It is safe from any goroutine, including after Run has
// returned.
//
// Post-Run contract (relied on by long-lived sessions that re-enter
// evaluation with a fresh Network per round): when Run returns, every
// peer goroutine has exited and Stopped() is true, so the state the
// handlers built — and Err(), Stats() — may be read without further
// synchronization. A late timeout firing after quiescence is a no-op:
// abort never overwrites the stopped flag or a nil error of an already
// stopped network.
func (n *Network) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Err returns the abort or timeout error of a stopped network (nil after
// clean quiescence). Safe after Run has returned; see Stopped.
func (n *Network) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// poolWidth resolves the configured worker count against GOMAXPROCS and
// the peer count.
func (n *Network) poolWidth() int {
	w := n.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if len(n.order) > 0 && w > len(n.order) {
		w = len(n.order)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run injects the initial messages (From is preserved; use a synthetic
// sender such as "query" for seeds), starts the worker pool, and blocks
// until the network quiesces, a handler aborts, or the timeout elapses
// (zero timeout means one minute). It returns run statistics and the abort
// or timeout error, if any.
func (n *Network) Run(initial []Message, timeout time.Duration) (Stats, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	start := time.Now()
	// One span per round on the dist-round track: trace writers show it
	// on the timeline, and a metrics sink with ObserveSpans configured
	// folds its duration into a dist_round_latency_seconds histogram (the
	// node's own view of the round, next to the driver's per-node series).
	roundSpan := n.tracer.Begin("dist-round", "dist: round")
	defer n.tracer.End(roundSpan)

	// Seed through the regular send path so seeds addressed to peers
	// hosted on other nodes route like any other message. The peer loops
	// have not started, so nothing is handled before seeding completes.
	for _, m := range initial {
		n.send(m)
	}
	if len(initial) == 0 && !n.external {
		// Nothing to do: already quiescent. A cluster member instead
		// waits for injected messages until the coordinator stops it.
		n.mu.Lock()
		n.stopped = true
		n.mu.Unlock()
	}

	// Per-peer lifetime spans, kept from the one-goroutine-per-peer
	// runtime so per-peer tracks still frame the round in trace timelines.
	var lives []obs.Span
	if n.tracer.Enabled() {
		for _, id := range n.order {
			lives = append(lives, n.tracer.Begin(string(id), "peer"))
		}
	}

	// Workers exit only once the network stops: a standalone network stops
	// itself at quiescence, a cluster member stops via the coordinator (or
	// a failure) — even a node hosting no peers must keep answering polls
	// until then, which the waiting workers cover.
	var wg sync.WaitGroup
	for i := n.poolWidth(); i > 0; i-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.workerLoop()
		}()
	}

	timer := time.AfterFunc(timeout, func() { n.abort(ErrTimeout) })
	wg.Wait()
	timer.Stop()
	for _, sp := range lives {
		sp.End()
	}

	n.mu.Lock()
	n.stats.Elapsed = time.Since(start)
	stats, err := n.stats, n.err
	n.mu.Unlock()

	// Per-channel message counts, one counter sample per (from, to) pair.
	// Emitted once per run, so a metrics sink accumulates them into the
	// cumulative dist_messages_total{from,to} series.
	if n.tracer.Enabled() {
		for pair, c := range stats.MessagesByPair {
			n.tracer.Counter("dist",
				fmt.Sprintf("dist_messages_total{from=%q,to=%q}", pair.From, pair.To), int64(c))
		}
		for pair, c := range stats.BytesSentByPair {
			n.tracer.Counter("dist",
				fmt.Sprintf("dist_bytes_total{from=%q,to=%q}", pair.From, pair.To), int64(c))
		}
	}
	return stats, err
}
