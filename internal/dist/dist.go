// Package dist provides the asynchronous peer-to-peer runtime used by the
// distributed evaluators: one goroutine per peer, asynchronous message
// delivery that preserves per-sender FIFO order (the only ordering
// guarantee the paper's model assumes — Section 2, "for each individual
// peer the relative order of its alarms ... respects the order in which
// they were sent"), and distributed termination detection.
//
// Termination ("the system reaches a fixpoint when no new relation may be
// activated and no new fact derived at any peer", Section 3.2) is detected
// by message counting: the network is quiescent exactly when every peer is
// blocked waiting for input and no message is in flight. Because the whole
// network runs in one process, the count is maintained under a single lock
// and detection is exact — this stands in for the "standard termination
// detection algorithms for distributed computing" the paper cites [19, 33].
package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// PeerID names a peer.
type PeerID string

// Message is an asynchronous message between peers. Payload is
// evaluator-defined; the runtime never inspects it.
type Message struct {
	From    PeerID
	To      PeerID
	Payload any

	// seq is the network-wide send sequence number, correlating the
	// send-side and delivery-side trace events of one hop.
	seq uint64
}

// Handler processes one message on behalf of a peer. It runs on the peer's
// goroutine; messages to a peer are handled one at a time, in per-sender
// FIFO order. The handler may send further messages through ctx.
type Handler func(ctx *Context, m Message)

// Context is a peer's interface to the network during message handling.
type Context struct {
	net  *Network
	self PeerID
}

// Self returns the identity of the handling peer.
func (c *Context) Self() PeerID { return c.self }

// Send delivers payload to the given peer asynchronously.
func (c *Context) Send(to PeerID, payload any) {
	c.net.send(Message{From: c.self, To: to, Payload: payload})
}

// Abort stops the whole network; Run returns err.
func (c *Context) Abort(err error) {
	c.net.abort(err)
}

// Stopped reports whether the network has been aborted or has quiesced.
// Long-running handlers should poll it and bail out: an abort stops
// message delivery but cannot interrupt a handler.
func (c *Context) Stopped() bool {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.net.stopped
}

// Pair names a directed sender→receiver channel.
type Pair struct {
	From PeerID
	To   PeerID
}

// Stats summarizes a network run.
type Stats struct {
	MessagesSent int
	Processed    map[PeerID]int // messages handled per peer
	// MessagesByPair counts sends per (sender, receiver) channel; the
	// values sum to MessagesSent (initial seed messages count under their
	// synthetic sender).
	MessagesByPair map[Pair]int
	Elapsed        time.Duration
}

// ErrTimeout is returned by Run when the deadline passes before quiescence.
var ErrTimeout = errors.New("dist: network did not quiesce before deadline")

type peer struct {
	id      PeerID
	handler Handler
	queue   []Message
	waiting bool
	done    chan struct{}
}

// Network is a closed set of peers exchanging asynchronous messages.
// Configure with AddPeer, then call Run exactly once.
type Network struct {
	mu       sync.Mutex
	cond     *sync.Cond
	peers    map[PeerID]*peer
	order    []PeerID
	inflight int // messages sent but not yet fully processed
	idle     int // peers currently blocked on an empty queue
	stopped  bool
	err      error
	stats    Stats
	seq      uint64     // send sequence number (trace flow IDs)
	tracer   obs.Tracer // never nil; obs.Nop by default
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	n := &Network{peers: make(map[PeerID]*peer), tracer: obs.Nop}
	n.cond = sync.NewCond(&n.mu)
	n.stats.Processed = make(map[PeerID]int)
	n.stats.MessagesByPair = make(map[Pair]int)
	return n
}

// SetTracer installs the network's tracer (obs.Nop when t is nil). Must
// be called before Run; the default no-op tracer costs nothing on the
// message-dispatch hot path.
func (n *Network) SetTracer(t obs.Tracer) {
	n.tracer = obs.Or(t)
}

// AddPeer registers a peer. It panics if the ID is taken or the network has
// started.
func (n *Network) AddPeer(id PeerID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		panic("dist: AddPeer after Run")
	}
	if _, ok := n.peers[id]; ok {
		panic(fmt.Sprintf("dist: duplicate peer %q", id))
	}
	n.peers[id] = &peer{id: id, handler: h, done: make(chan struct{})}
	n.order = append(n.order, id)
}

// Peers returns the registered peer IDs in registration order.
func (n *Network) Peers() []PeerID {
	out := make([]PeerID, len(n.order))
	copy(out, n.order)
	return out
}

func (n *Network) send(m Message) {
	n.mu.Lock()
	p, ok := n.peers[m.To]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("dist: send to unknown peer %q", m.To))
	}
	if n.stopped {
		n.mu.Unlock()
		return // late sends during shutdown are dropped
	}
	n.inflight++
	n.stats.MessagesSent++
	n.stats.MessagesByPair[Pair{From: m.From, To: m.To}]++
	n.seq++
	m.seq = n.seq
	p.queue = append(p.queue, m)
	n.cond.Broadcast()
	n.mu.Unlock()
	n.tracer.FlowBegin(string(m.From), "msg", m.seq)
}

func (n *Network) abort(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.stopped {
		n.stopped = true
		if n.err == nil {
			n.err = err
		}
		n.cond.Broadcast()
	}
}

// receive blocks until a message is available for p or the network stops.
func (n *Network) receive(p *peer) (Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(p.queue) == 0 && !n.stopped {
		if !p.waiting {
			p.waiting = true
			n.idle++
			if n.quiescentLocked() {
				n.stopped = true
				n.cond.Broadcast()
				return Message{}, false
			}
		}
		n.cond.Wait()
	}
	if len(p.queue) == 0 {
		return Message{}, false
	}
	if p.waiting {
		p.waiting = false
		n.idle--
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	return m, true
}

// finish marks one message as fully processed.
func (n *Network) finish(p *peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inflight--
	n.stats.Processed[p.id]++
	if n.quiescentLocked() {
		n.stopped = true
		n.cond.Broadcast()
	}
}

// quiescentLocked reports global quiescence: every peer idle, nothing in
// flight. Caller holds n.mu.
func (n *Network) quiescentLocked() bool {
	return n.inflight == 0 && n.idle == len(n.peers)
}

// Stopped reports whether the network has stopped (quiesced, aborted, or
// timed out). It is safe from any goroutine, including after Run has
// returned.
//
// Post-Run contract (relied on by long-lived sessions that re-enter
// evaluation with a fresh Network per round): when Run returns, every
// peer goroutine has exited and Stopped() is true, so the state the
// handlers built — and Err(), Stats() — may be read without further
// synchronization. A late timeout firing after quiescence is a no-op:
// abort never overwrites the stopped flag or a nil error of an already
// stopped network.
func (n *Network) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Err returns the abort or timeout error of a stopped network (nil after
// clean quiescence). Safe after Run has returned; see Stopped.
func (n *Network) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

func (p *peer) loop(n *Network) {
	defer close(p.done)
	ctx := &Context{net: n, self: p.id}
	tr := n.tracer
	life := tr.Begin(string(p.id), "peer")
	defer life.End()
	for {
		m, ok := n.receive(p)
		if !ok {
			return
		}
		if tr.Enabled() {
			tr.FlowEnd(string(p.id), "msg", m.seq)
			sp := tr.Begin(string(p.id), fmt.Sprintf("handle %T", m.Payload))
			p.handler(ctx, m)
			sp.End()
		} else {
			p.handler(ctx, m)
		}
		n.finish(p)
	}
}

// Run injects the initial messages (From is preserved; use a synthetic
// sender such as "query" for seeds), starts every peer, and blocks until
// the network quiesces, a handler aborts, or the timeout elapses (zero
// timeout means one minute). It returns run statistics and the abort or
// timeout error, if any.
func (n *Network) Run(initial []Message, timeout time.Duration) (Stats, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	start := time.Now()

	n.mu.Lock()
	for _, m := range initial {
		p, ok := n.peers[m.To]
		if !ok {
			n.mu.Unlock()
			panic(fmt.Sprintf("dist: initial message to unknown peer %q", m.To))
		}
		n.inflight++
		n.stats.MessagesSent++
		n.stats.MessagesByPair[Pair{From: m.From, To: m.To}]++
		n.seq++
		m.seq = n.seq
		p.queue = append(p.queue, m)
		n.tracer.FlowBegin(string(m.From), "msg", m.seq)
	}
	if len(initial) == 0 {
		// Nothing to do: already quiescent.
		n.stopped = true
	}
	n.mu.Unlock()

	for _, id := range n.order {
		go n.peers[id].loop(n)
	}

	timer := time.AfterFunc(timeout, func() { n.abort(ErrTimeout) })
	for _, id := range n.order {
		<-n.peers[id].done
	}
	timer.Stop()

	n.mu.Lock()
	n.stats.Elapsed = time.Since(start)
	stats, err := n.stats, n.err
	n.mu.Unlock()

	// Per-channel message counts, one counter sample per (from, to) pair.
	// Emitted once per run, so a metrics sink accumulates them into the
	// cumulative dist_messages_total{from,to} series.
	if n.tracer.Enabled() {
		for pair, c := range stats.MessagesByPair {
			n.tracer.Counter("dist",
				fmt.Sprintf("dist_messages_total{from=%q,to=%q}", pair.From, pair.To), int64(c))
		}
	}
	return stats, err
}
