package dist

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rel"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ringCluster builds a driver hosting peer "a" and two members hosting
// "b" and "c" over an in-process mesh. Each peer forwards
// wire.Activate{Rel: k} as k-1 to the next peer of the ring until k
// reaches zero, so one seed of k produces exactly k+1 messages
// cluster-wide.
func ringCluster(t *testing.T, handler func(self PeerID) Handler) (*Driver, []*Member) {
	t.Helper()
	mesh := transport.NewMesh()
	assign := map[PeerID]string{"b": "n1", "c": "n2"}
	drv, err := NewDriver(mesh.Node("drv"), []string{"n1", "n2"}, assign)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Node("drv").Close() })
	members := make([]*Member, 0, 2)
	for node, peer := range map[string]PeerID{"n1": "b", "n2": "c"} {
		m, err := NewMember(mesh.Node(node), "drv")
		if err != nil {
			t.Fatal(err)
		}
		m.SetAssign(assign)
		t.Cleanup(func() { m.Close() })
		members = append(members, m)
		go func(m *Member, peer PeerID) {
			for {
				r := m.NextRound()
				r.AddPeer(peer, handler(peer))
				stats, err := r.Run(nil, 30*time.Second)
				if errors.Is(err, ErrClusterClosed) {
					return
				}
				var processed uint64
				for _, c := range stats.Processed {
					processed += uint64(c)
				}
				r.Finish(map[string]uint64{"hops": processed})
			}
		}(m, peer)
	}
	return drv, members
}

func ringHandler(self PeerID) Handler {
	next := map[PeerID]PeerID{"a": "b", "b": "c", "c": "a"}
	return func(ctx *Context, m Message) {
		k, err := strconv.Atoi(string(m.Payload.(wire.Activate).Rel))
		if err != nil || k == 0 {
			return
		}
		ctx.Send(next[self], wire.Activate{Rel: rel.Name(strconv.Itoa(k - 1))})
	}
}

func TestClusterRing(t *testing.T) {
	drv, _ := ringCluster(t, ringHandler)

	r := drv.NewRound()
	r.AddPeer("a", ringHandler("a"))
	seed := []Message{{From: "seed", To: "a", Payload: wire.Activate{Rel: "10"}}}
	stats, err := r.Run(seed, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 11 {
		t.Errorf("MessagesSent = %d, want 11", stats.MessagesSent)
	}
	var processed int
	for _, c := range stats.Processed {
		processed += c
	}
	if processed != 11 {
		t.Errorf("total processed = %d, want 11", processed)
	}
	// Members hosted b and c: of the 11 hops, a handles 4 (k=10,7,4,1),
	// b handles 4 (9,6,3,0) and c handles 3 (8,5,2) — 7 member hops.
	if got := r.ClusterExtras()["hops"]; got != 7 {
		t.Errorf("member hops = %d, want 7", got)
	}
	// Per-pair counts from the members were folded in: the b→c channel
	// lives entirely on member n1.
	if got := stats.MessagesByPair[Pair{From: "b", To: "c"}]; got != 3 {
		t.Errorf("b→c messages = %d, want 3", got)
	}
	if got := stats.BytesSentByPair[Pair{From: "b", To: "c"}]; got == 0 {
		t.Error("b→c bytes not accounted")
	}
}

// TestClusterTwoRounds reuses the same members for a second evaluation:
// the round boundary (Stop, Done, fresh networks, backlog replay) must
// not lose or duplicate anything.
func TestClusterTwoRounds(t *testing.T) {
	drv, _ := ringCluster(t, ringHandler)

	for round, k := range []int{10, 5} {
		r := drv.NewRound()
		r.AddPeer("a", ringHandler("a"))
		seed := []Message{{From: "seed", To: "a", Payload: wire.Activate{Rel: rel.Name(strconv.Itoa(k))}}}
		stats, err := r.Run(seed, 30*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.MessagesSent != k+1 {
			t.Errorf("round %d: MessagesSent = %d, want %d", round, stats.MessagesSent, k+1)
		}
	}
}

// TestClusterMemberAbort: a handler aborting on a member node must fail
// the whole round at the driver with the member's error.
func TestClusterMemberAbort(t *testing.T) {
	boom := "member b exploded"
	handler := func(self PeerID) Handler {
		inner := ringHandler(self)
		return func(ctx *Context, m Message) {
			if self == "b" {
				ctx.Abort(errors.New(boom))
				return
			}
			inner(ctx, m)
		}
	}
	drv, _ := ringCluster(t, handler)

	r := drv.NewRound()
	r.AddPeer("a", ringHandler("a"))
	seed := []Message{{From: "seed", To: "a", Payload: wire.Activate{Rel: "10"}}}
	_, err := r.Run(seed, 30*time.Second)
	if err == nil || !strings.Contains(err.Error(), boom) {
		t.Fatalf("driver error = %v, want %q", err, boom)
	}
}

// TestClusterOverTCP runs the ring over real loopback sockets.
func TestClusterOverTCP(t *testing.T) {
	names := []string{"drv", "n1", "n2"}
	trs := make(map[string]*transport.TCP, len(names))
	for _, n := range names {
		tr, err := transport.ListenTCP(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		trs[n] = tr
	}
	for _, a := range names {
		for _, b := range names {
			if a != b {
				trs[a].AddRoute(b, trs[b].Addr())
			}
		}
	}
	assign := map[PeerID]string{"b": "n1", "c": "n2"}
	drv, err := NewDriver(trs["drv"], []string{"n1", "n2"}, assign)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for node, peer := range map[string]PeerID{"n1": "b", "n2": "c"} {
		m, err := NewMember(trs[node], "drv")
		if err != nil {
			t.Fatal(err)
		}
		m.SetAssign(assign)
		wg.Add(1)
		go func(m *Member, peer PeerID) {
			defer wg.Done()
			r := m.NextRound()
			r.AddPeer(peer, ringHandler(peer))
			if _, err := r.Run(nil, 30*time.Second); err == nil {
				r.Finish(nil)
			} else {
				r.Finish(nil)
			}
		}(m, peer)
	}

	r := drv.NewRound()
	r.AddPeer("a", ringHandler("a"))
	seed := []Message{{From: "seed", To: "a", Payload: wire.Activate{Rel: "20"}}}
	stats, err := r.Run(seed, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 21 {
		t.Errorf("MessagesSent = %d, want 21", stats.MessagesSent)
	}
	var processed int
	for _, c := range stats.Processed {
		processed += c
	}
	if processed != 21 {
		t.Errorf("total processed = %d, want 21", processed)
	}
	wg.Wait()
}
