package dist

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQuiescenceEmpty(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {})
	st, err := n.Run(nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.MessagesSent != 0 {
		t.Fatalf("sent %d", st.MessagesSent)
	}
}

func TestPingPongCountdown(t *testing.T) {
	n := NewNetwork()
	handler := func(ctx *Context, m Message) {
		k := m.Payload.(int)
		if k > 0 {
			ctx.Send(m.From, k-1)
		}
	}
	n.AddPeer("a", handler)
	n.AddPeer("b", handler)
	st, err := n.Run([]Message{{From: "a", To: "b", Payload: 10}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Initial message + 10 replies.
	if st.MessagesSent != 11 {
		t.Fatalf("sent %d, want 11", st.MessagesSent)
	}
	if st.Processed["a"]+st.Processed["b"] != 11 {
		t.Fatalf("processed %v", st.Processed)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	n := NewNetwork()
	var mu sync.Mutex
	var got []int
	n.AddPeer("sink", func(ctx *Context, m Message) {
		mu.Lock()
		got = append(got, m.Payload.(int))
		mu.Unlock()
	})
	n.AddPeer("src", func(ctx *Context, m Message) {
		for i := 0; i < 100; i++ {
			ctx.Send("sink", i)
		}
	})
	if _, err := n.Run([]Message{{From: "go", To: "src", Payload: 0}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("sink got %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestFanOutFanIn(t *testing.T) {
	const workers = 8
	n := NewNetwork()
	var mu sync.Mutex
	total := 0
	n.AddPeer("coord", func(ctx *Context, m Message) {
		switch v := m.Payload.(type) {
		case string: // kickoff
			for i := 0; i < workers; i++ {
				ctx.Send(PeerID(rune('0'+i)), 7)
			}
			_ = v
		case int:
			mu.Lock()
			total += v
			mu.Unlock()
		}
	})
	for i := 0; i < workers; i++ {
		n.AddPeer(PeerID(rune('0'+i)), func(ctx *Context, m Message) {
			ctx.Send("coord", m.Payload.(int)*2)
		})
	}
	if _, err := n.Run([]Message{{From: "ext", To: "coord", Payload: "go"}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if total != workers*14 {
		t.Fatalf("total = %d, want %d", total, workers*14)
	}
}

func TestTimeoutOnLivelock(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		ctx.Send("a", m.Payload) // never quiesces
	})
	_, err := n.Run([]Message{{From: "x", To: "a", Payload: 0}}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestAbortPropagates(t *testing.T) {
	boom := errors.New("boom")
	n := NewNetwork()
	n.AddPeer("a", func(ctx *Context, m Message) {
		ctx.Abort(boom)
	})
	n.AddPeer("b", func(ctx *Context, m Message) {})
	_, err := n.Run([]Message{{From: "x", To: "a", Payload: 0}}, time.Second)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSelfAndContextIdentity(t *testing.T) {
	n := NewNetwork()
	var self PeerID
	var from PeerID
	n.AddPeer("me", func(ctx *Context, m Message) {
		self = ctx.Self()
		from = m.From
	})
	if _, err := n.Run([]Message{{From: "you", To: "me", Payload: 0}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if self != "me" || from != "you" {
		t.Fatalf("self=%q from=%q", self, from)
	}
}

func TestDuplicatePeerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	n := NewNetwork()
	n.AddPeer("a", nil)
	n.AddPeer("a", nil)
}

// Gossip stress: every peer forwards a token to the next peer a bounded
// number of times; the network must quiesce with the exact message count.
func TestRingGossipStress(t *testing.T) {
	const peers = 20
	const hops = 500
	n := NewNetwork()
	id := func(i int) PeerID { return PeerID(rune('A' + i)) }
	for i := 0; i < peers; i++ {
		next := id((i + 1) % peers)
		n.AddPeer(id(i), func(ctx *Context, m Message) {
			k := m.Payload.(int)
			if k > 0 {
				ctx.Send(next, k-1)
			}
		})
	}
	st, err := n.Run([]Message{{From: "x", To: id(0), Payload: hops}}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.MessagesSent != hops+1 {
		t.Fatalf("sent %d, want %d", st.MessagesSent, hops+1)
	}
}

func BenchmarkRingHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		for j := 0; j < 4; j++ {
			next := PeerID(rune('A' + (j+1)%4))
			n.AddPeer(PeerID(rune('A'+j)), func(ctx *Context, m Message) {
				k := m.Payload.(int)
				if k > 0 {
					ctx.Send(next, k-1)
				}
			})
		}
		if _, err := n.Run([]Message{{From: "x", To: "A", Payload: 100}}, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
