package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestNopZeroAllocs is the hot-path contract: the default tracer must be
// free. Every event kind the dist/ddatalog hot paths emit is exercised.
func TestNopZeroAllocs(t *testing.T) {
	tr := Nop
	if n := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("Nop claims enabled")
		}
		sp := tr.Begin("p1", "handle")
		tr.FlowBegin("p1", "msg", 7)
		tr.FlowEnd("p2", "msg", 7)
		tr.Counter("ddatalog", "ddatalog_facts_derived_total", 1)
		tr.Gauge("ddatalog", "ddatalog_pending_delta", 3)
		tr.Instant("p1", "install")
		sp.End()
	}); n != 0 {
		t.Fatalf("Nop tracer allocates %v per op, want 0", n)
	}
}

// TestMultiDropsNop checks that Multi collapses to its live members.
func TestMultiDropsNop(t *testing.T) {
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Fatal("empty Multi is not Nop")
	}
	w := NewChromeTraceWriter(0)
	if Multi(nil, Nop, w) != Tracer(w) {
		t.Fatal("single live member not unwrapped")
	}
	m := Multi(w, NewChromeTraceWriter(0))
	if !m.Enabled() {
		t.Fatal("multi of enabled tracers not enabled")
	}
	m.Counter("t", "c_total", 2)
	if w.Len() != 1 {
		t.Fatalf("fan-out missed first member: %d events", w.Len())
	}
	sp := m.Begin("t", "s")
	sp.End()
	if w.Len() != 2 {
		t.Fatalf("span fan-out missed: %d events", w.Len())
	}
}

func decodeTrace(t *testing.T, w *ChromeTraceWriter) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return file
}

func traceEvents(t *testing.T, file map[string]any) []map[string]any {
	t.Helper()
	raw, ok := file["traceEvents"].([]any)
	if !ok {
		t.Fatalf("no traceEvents array: %v", file)
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i] = e.(map[string]any)
	}
	return out
}

func TestChromeTraceWriterExport(t *testing.T) {
	w := NewChromeTraceWriter(0)
	sp := w.Begin("p1", "handle msgFacts")
	w.FlowBegin("p1", "msg", 1)
	w.FlowEnd("p2", "msg", 1)
	w.Counter("p1", "c_total", 2)
	w.Counter("p1", "c_total", 3)
	w.Gauge("p2", "level", 9)
	w.Instant("p2", "install")
	time.Sleep(time.Millisecond)
	sp.End()

	events := traceEvents(t, decodeTrace(t, w))
	byPhase := map[string][]map[string]any{}
	for _, e := range events {
		byPhase[e["ph"].(string)] = append(byPhase[e["ph"].(string)], e)
	}
	// Metadata: one process_name plus one thread_name per track (p1, p2).
	if len(byPhase["M"]) != 3 {
		t.Fatalf("metadata events = %d, want 3", len(byPhase["M"]))
	}
	if len(byPhase["X"]) != 1 || byPhase["X"][0]["name"] != "handle msgFacts" {
		t.Fatalf("span events: %v", byPhase["X"])
	}
	if dur := byPhase["X"][0]["dur"].(float64); dur < 500 {
		t.Fatalf("span dur = %vµs, want >= 500", dur)
	}
	if len(byPhase["s"]) != 1 || len(byPhase["f"]) != 1 {
		t.Fatalf("flow events: s=%d f=%d", len(byPhase["s"]), len(byPhase["f"]))
	}
	if byPhase["f"][0]["bp"] != "e" || byPhase["s"][0]["id"].(float64) != 1 {
		t.Fatalf("flow fields: %v", byPhase["f"][0])
	}
	// Counter deltas accumulate (2 then 5); the gauge stays absolute.
	var counterVals []float64
	for _, e := range byPhase["C"] {
		counterVals = append(counterVals, e["args"].(map[string]any)["value"].(float64))
	}
	if len(counterVals) != 3 || counterVals[0] != 2 || counterVals[1] != 5 || counterVals[2] != 9 {
		t.Fatalf("counter samples = %v, want [2 5 9]", counterVals)
	}
	if len(byPhase["i"]) != 1 {
		t.Fatalf("instant events = %d", len(byPhase["i"]))
	}
}

func TestChromeTraceWriterBound(t *testing.T) {
	w := NewChromeTraceWriter(2)
	for i := 0; i < 5; i++ {
		w.Instant("t", "e")
	}
	if w.Len() != 2 || w.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", w.Len(), w.Dropped())
	}
	file := decodeTrace(t, w)
	other, ok := file["otherData"].(map[string]any)
	if !ok || other["droppedEvents"].(float64) != 3 {
		t.Fatalf("droppedEvents missing: %v", file["otherData"])
	}
}

// fakeRegistry records what the sink forwards.
type fakeRegistry struct {
	counters map[string]int64
	gauges   map[string]int64
	observed map[string]int
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		observed: map[string]int{},
	}
}

func (r *fakeRegistry) Add(name string, delta int64)         { r.counters[name] += delta }
func (r *fakeRegistry) SetGauge(name string, v int64)        { r.gauges[name] = v }
func (r *fakeRegistry) Observe(name string, d time.Duration) { r.observed[name]++ }

func TestMetricsSink(t *testing.T) {
	reg := newFakeRegistry()
	sink := NewMetricsSink(reg)
	sink.Counter("dist", `dist_messages_total{from="p1",to="p2"}`, 4)
	sink.Counter("dist", `dist_messages_total{from="p1",to="p2"}`, 2)
	sink.Counter("ddatalog", "derived trans@p1", 9) // display-only: has a space
	sink.Gauge("diagnosis", "diagnosis_unfolding_nodes", 11)
	sink.Gauge("dqsq", "sup p1", 3) // display-only
	sp := sink.Begin("diagnosis", "append.v1")
	sp.End()
	sink.Begin("p1", "handle").End() // unconfigured track: no histogram

	if got := reg.counters[`dist_messages_total{from="p1",to="p2"}`]; got != 6 {
		t.Fatalf("pair counter = %d, want 6", got)
	}
	if len(reg.counters) != 1 {
		t.Fatalf("display-only counter leaked into registry: %v", reg.counters)
	}
	if reg.gauges["diagnosis_unfolding_nodes"] != 11 || len(reg.gauges) != 1 {
		t.Fatalf("gauges = %v", reg.gauges)
	}
	if reg.observed["diagnosis_append_engine_seconds"] != 1 || len(reg.observed) != 1 {
		t.Fatalf("observed = %v", reg.observed)
	}
}

func TestMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"ddatalog_facts_derived_total":         true,
		`dist_messages_total{from="a",to="b"}`: true,
		"diagnosis_unfolding_nodes":            true,
		"derived trans@p1":                     false,
		"sup p1":                               false,
		"":                                     false,
		"9starts_with_digit":                   false,
		"unclosed{label=\"x\"":                 false,
	} {
		if got := MetricName(name); got != want {
			t.Errorf("MetricName(%q) = %v, want %v", name, got, want)
		}
	}
}
