// Package obs is the observability substrate of the evaluation stack: a
// stdlib-only tracing interface threaded through the peer runtime
// (internal/dist), the distributed Datalog engine (internal/ddatalog),
// the dQSQ rewriter (internal/dqsq) and the online supervisor
// (internal/diagnosis).
//
// The paper's central claim (Theorem 4) is about how much the evaluators
// materialize; this package is how a run is *measured*: every peer
// activation becomes a span, every message hop a flow-event pair, every
// engine counter a counter sample. Two consumers are provided:
//
//   - ChromeTraceWriter records the event stream and exports it as Chrome
//     trace-event JSON (loadable in chrome://tracing or Perfetto).
//   - MetricsSink folds counter/gauge/span events into a metrics registry
//     (internal/serve's /metrics endpoint).
//
// The default tracer is Nop, and the contract the hot paths rely on is
// that the Nop path allocates nothing: all event arguments are value
// types, Begin returns a Span by value, and call sites guard any
// name-formatting behind Enabled().
package obs

import "time"

// Span is one open duration event on a logical track. It is a plain
// value: Begin fills it, End reports it back to the tracer that created
// it. The zero Span (from the Nop tracer) ends as a no-op.
type Span struct {
	tr    Tracer
	Track string
	Name  string
	Start time.Time
}

// End closes the span.
func (s Span) End() {
	if s.tr != nil {
		s.tr.End(s)
	}
}

// Tracer receives the event stream of an evaluation. Implementations
// must be safe for concurrent use: events arrive from every peer
// goroutine of a running network.
//
// Tracks are logical rows — a peer ID, or a component name such as
// "ddatalog" — and map onto threads in the Chrome trace export. Counter
// and Gauge names that look like Prometheus series (optionally with a
// {label="..."} suffix) are folded into /metrics by MetricsSink; names
// containing spaces are display-only and skipped by it.
type Tracer interface {
	// Enabled reports whether the tracer records anything. Call sites use
	// it to guard event-name formatting; events may be emitted regardless.
	Enabled() bool
	// Begin opens a duration span on a track.
	Begin(track, name string) Span
	// End closes a span begun by Begin. Most callers use Span.End.
	End(s Span)
	// Instant emits a zero-duration event.
	Instant(track, name string)
	// Counter emits a monotone counter increment (delta, not total).
	Counter(track, name string, delta int64)
	// Gauge emits a point-in-time level sample (absolute value).
	Gauge(track, name string, value int64)
	// FlowBegin marks the sending half of a cross-track hop (a message
	// leaving a peer); id correlates it with the matching FlowEnd.
	FlowBegin(track, name string, id uint64)
	// FlowEnd marks the receiving half of the hop.
	FlowEnd(track, name string, id uint64)
}

// Nop is the default tracer: it records nothing and allocates nothing.
var Nop Tracer = nop{}

type nop struct{}

func (nop) Enabled() bool                    { return false }
func (nop) Begin(string, string) Span        { return Span{} }
func (nop) End(Span)                         {}
func (nop) Instant(string, string)           {}
func (nop) Counter(string, string, int64)    {}
func (nop) Gauge(string, string, int64)      {}
func (nop) FlowBegin(string, string, uint64) {}
func (nop) FlowEnd(string, string, uint64)   {}

// Or returns t, or Nop when t is nil — the idiom for optional Tracer
// fields in options structs.
func Or(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// Multi fans events out to several tracers (e.g. a ChromeTraceWriter and
// a MetricsSink side by side). Nil and Nop members are dropped; with no
// live member the result is Nop itself.
func Multi(tracers ...Tracer) Tracer {
	var live multi
	for _, t := range tracers {
		if t == nil || t == Nop {
			continue
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return live
}

type multi []Tracer

func (m multi) Enabled() bool {
	for _, t := range m {
		if t.Enabled() {
			return true
		}
	}
	return false
}

func (m multi) Begin(track, name string) Span {
	return Span{tr: m, Track: track, Name: name, Start: time.Now()}
}

func (m multi) End(s Span) {
	for _, t := range m {
		t.End(s)
	}
}

func (m multi) Instant(track, name string) {
	for _, t := range m {
		t.Instant(track, name)
	}
}

func (m multi) Counter(track, name string, delta int64) {
	for _, t := range m {
		t.Counter(track, name, delta)
	}
}

func (m multi) Gauge(track, name string, value int64) {
	for _, t := range m {
		t.Gauge(track, name, value)
	}
}

func (m multi) FlowBegin(track, name string, id uint64) {
	for _, t := range m {
		t.FlowBegin(track, name, id)
	}
}

func (m multi) FlowEnd(track, name string, id uint64) {
	for _, t := range m {
		t.FlowEnd(track, name, id)
	}
}
