package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestDrainEvents(t *testing.T) {
	w := NewChromeTraceWriter(3)
	w.Instant("t", "a")
	w.Counter("t", "c_total", 5)
	w.FlowBegin("t", "msg", 42)
	w.Instant("t", "overflow") // fourth event: dropped

	events, dropped := w.DrainEvents()
	if len(events) != 3 || dropped != 1 {
		t.Fatalf("drain: %d events, %d dropped, want 3/1", len(events), dropped)
	}
	if events[0].Track != "t" || events[0].Name != "a" || events[0].Ph != 'i' {
		t.Fatalf("event[0] = %+v", events[0])
	}
	if events[1].Ph != 'C' || events[1].Value != 5 {
		t.Fatalf("event[1] = %+v", events[1])
	}
	if events[2].Ph != 's' || events[2].ID != 42 {
		t.Fatalf("event[2] = %+v", events[2])
	}
	// Wall-clock form: timestamps are epoch µs, not trace-relative.
	if events[0].Wall < 1_000_000_000_000_000 {
		t.Fatalf("event Wall = %d, not epoch microseconds", events[0].Wall)
	}

	// The drain frees the bound; dropped stays cumulative.
	if w.Len() != 0 {
		t.Fatalf("len after drain = %d", w.Len())
	}
	w.Instant("t", "b")
	events, dropped = w.DrainEvents()
	if len(events) != 1 || dropped != 1 {
		t.Fatalf("second drain: %d events, %d dropped, want 1/1", len(events), dropped)
	}
}

func TestWriteClusterJSON(t *testing.T) {
	// Two processes whose clocks disagree by 1s: the member's events are
	// stamped 1_000_000µs ahead, and Offset carries the estimate.
	driver := ProcessTrace{Name: "driver", Events: []Event{
		{Track: "p1", Name: "round", Ph: 'X', Wall: 10_000_100, Dur: 400},
		{Track: "p1", Name: "msg", Ph: 's', Wall: 10_000_200, ID: 7},
		{Track: "p1", Name: "sent_total", Ph: 'C', Wall: 10_000_250, Value: 2},
		{Track: "p1", Name: "sent_total", Ph: 'C', Wall: 10_000_300, Value: 3},
	}}
	member := ProcessTrace{Name: "m0", Offset: 1_000_000, Dropped: 4, Events: []Event{
		{Track: "p2", Name: "msg", Ph: 'f', Wall: 11_000_300, ID: 7},
		{Track: "p2", Name: "handle", Ph: 'X', Wall: 11_000_310, Dur: 50},
		{Track: "p2", Name: "depth", Ph: 'G', Wall: 11_000_320, Value: 9},
	}}

	var buf bytes.Buffer
	if err := WriteClusterJSON(&buf, []ProcessTrace{driver, member}); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	events := file["traceEvents"].([]any)

	byPhase := map[string][]map[string]any{}
	pids := map[float64]bool{}
	for _, raw := range events {
		e := raw.(map[string]any)
		byPhase[e["ph"].(string)] = append(byPhase[e["ph"].(string)], e)
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 processes", pids)
	}
	// Metadata: 2 process_name + 2 thread_name.
	if len(byPhase["M"]) != 4 {
		t.Fatalf("metadata events = %d, want 4", len(byPhase["M"]))
	}

	// Offset alignment: the driver's first event defines ts 0; the
	// member's flow-end lands 200µs later on the merged axis (its 1s of
	// clock skew is subtracted), not 1.0002s later.
	ts := map[string]float64{}
	for _, ph := range []string{"X", "s", "f"} {
		for _, e := range byPhase[ph] {
			ts[e["name"].(string)+"/"+ph] = e["ts"].(float64)
		}
	}
	if ts["round/X"] != 0 {
		t.Fatalf("driver round ts = %v, want 0", ts["round/X"])
	}
	if ts["msg/f"] != 200 {
		t.Fatalf("member flow-end ts = %v, want 200 (offset-corrected)", ts["msg/f"])
	}
	if ts["handle/X"] != 210 {
		t.Fatalf("member handle ts = %v, want 210", ts["handle/X"])
	}

	// Flow halves bind by ID across the two pids.
	s, f := byPhase["s"][0], byPhase["f"][0]
	if s["id"].(float64) != 7 || f["id"].(float64) != 7 {
		t.Fatalf("flow ids: s=%v f=%v", s["id"], f["id"])
	}
	if s["pid"].(float64) == f["pid"].(float64) {
		t.Fatal("flow halves landed in the same process")
	}
	if f["bp"] != "e" {
		t.Fatalf("flow-end bp = %v", f["bp"])
	}

	// Counters accumulate per process; gauges stay absolute.
	var cVals []float64
	for _, e := range byPhase["C"] {
		cVals = append(cVals, e["args"].(map[string]any)["value"].(float64))
	}
	if len(cVals) != 3 || cVals[0] != 2 || cVals[1] != 5 || cVals[2] != 9 {
		t.Fatalf("counter samples = %v, want [2 5 9]", cVals)
	}

	other, ok := file["otherData"].(map[string]any)
	if !ok || other["droppedEvents"].(float64) != 4 {
		t.Fatalf("droppedEvents: %v", file["otherData"])
	}
}

func TestExportSnapshot(t *testing.T) {
	w := NewChromeTraceWriter(0)
	w.Instant("t", "a")
	pt := w.Export("driver")
	if pt.Name != "driver" || len(pt.Events) != 1 || pt.Dropped != 0 {
		t.Fatalf("export = %+v", pt)
	}
	if w.Len() != 1 {
		t.Fatal("Export must not drain the buffer")
	}
}
