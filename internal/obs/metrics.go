package obs

import "time"

// Registry is the metrics surface MetricsSink folds events into.
// internal/serve's *Metrics implements it; the indirection keeps obs
// import-free (serve sits above the whole evaluation stack).
type Registry interface {
	// Add increments a counter.
	Add(name string, delta int64)
	// SetGauge records an absolute level.
	SetGauge(name string, value int64)
	// Observe records a latency sample into a histogram.
	Observe(name string, d time.Duration)
}

// MetricsSink is a Tracer that folds the event stream into a Registry:
// Counter events become counter increments, Gauge events become gauge
// levels, and spans on configured tracks become latency histogram
// samples. Only events whose name is a valid Prometheus series name
// (letters, digits, '_' and ':', optionally followed by a {label,...}
// suffix) are forwarded — display-only names (anything with a space)
// stay in the trace and out of /metrics, which keeps high-cardinality
// per-rule detail from polluting the exposition.
type MetricsSink struct {
	reg Registry
	// spanHists maps a span track to the histogram its durations feed.
	spanHists map[string]string
}

// NewMetricsSink builds a sink over reg. By default, spans on the
// "diagnosis" track (one per OnlineDiagnoser.Append evaluation) feed the
// diagnosis_append_engine_seconds histogram; ObserveSpans adds more.
func NewMetricsSink(reg Registry) *MetricsSink {
	return &MetricsSink{
		reg:       reg,
		spanHists: map[string]string{"diagnosis": "diagnosis_append_engine_seconds"},
	}
}

// ObserveSpans routes the durations of spans on track into the named
// histogram. Not safe concurrently with event delivery; configure before
// tracing starts.
func (s *MetricsSink) ObserveSpans(track, histogram string) {
	s.spanHists[track] = histogram
}

// MetricName reports whether name is a well-formed Prometheus series
// name, optionally carrying a {...} label suffix.
func MetricName(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c == '{' {
			return name[len(name)-1] == '}'
		}
		if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

// Enabled reports true: the sink wants real event names.
func (s *MetricsSink) Enabled() bool { return true }

// Begin opens a span; only End reports anything.
func (s *MetricsSink) Begin(track, name string) Span {
	return Span{tr: s, Track: track, Name: name, Start: time.Now()}
}

// End folds the span into its track's histogram, if one is configured.
func (s *MetricsSink) End(sp Span) {
	if sp.Start.IsZero() {
		return
	}
	if hist, ok := s.spanHists[sp.Track]; ok {
		s.reg.Observe(hist, time.Since(sp.Start))
	}
}

// Instant is ignored: instants carry no measurable quantity.
func (s *MetricsSink) Instant(track, name string) {}

// Counter increments the named counter.
func (s *MetricsSink) Counter(track, name string, delta int64) {
	if MetricName(name) {
		s.reg.Add(name, delta)
	}
}

// Gauge sets the named gauge.
func (s *MetricsSink) Gauge(track, name string, value int64) {
	if MetricName(name) {
		s.reg.SetGauge(name, value)
	}
}

// FlowBegin is ignored; per-pair message counts arrive as Counter events.
func (s *MetricsSink) FlowBegin(track, name string, id uint64) {}

// FlowEnd is ignored.
func (s *MetricsSink) FlowEnd(track, name string, id uint64) {}
