package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ChromeTraceWriter is a Tracer that records the event stream in memory
// and exports it in the Chrome trace-event JSON format, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Each track becomes a named thread of one synthetic process; spans are
// complete ("X") events, message hops are flow ("s"/"f") event pairs,
// counters and gauges are counter ("C") samples. The buffer is bounded:
// past MaxEvents the writer drops new events and counts them, so a
// long-lived session's trace costs bounded memory.
type ChromeTraceWriter struct {
	mu      sync.Mutex
	start   time.Time
	max     int
	dropped int64
	events  []chromeEvent
	tids    map[string]int
	tracks  []string // track names in first-seen order, index+1 = tid
}

// DefaultMaxEvents bounds a trace buffer when NewChromeTraceWriter is
// given 0.
const DefaultMaxEvents = 1 << 16

// chromeEvent is one recorded event; the JSON field set depends on ph.
type chromeEvent struct {
	name  string
	ph    byte // X, i, C, s, f
	tid   int
	ts    int64 // microseconds since trace start
	dur   int64 // X only
	value int64 // C only
	id    uint64
}

// NewChromeTraceWriter returns an empty trace buffer holding at most
// maxEvents events (0 means DefaultMaxEvents, negative means unbounded).
func NewChromeTraceWriter(maxEvents int) *ChromeTraceWriter {
	if maxEvents == 0 {
		maxEvents = DefaultMaxEvents
	}
	return &ChromeTraceWriter{
		start: time.Now(),
		max:   maxEvents,
		tids:  make(map[string]int),
	}
}

// Enabled reports true: call sites should format real event names.
func (w *ChromeTraceWriter) Enabled() bool { return true }

func (w *ChromeTraceWriter) since(t time.Time) int64 {
	return t.Sub(w.start).Microseconds()
}

// tidLocked maps a track name to its thread ID, registering it on first
// sight. Caller holds w.mu.
func (w *ChromeTraceWriter) tidLocked(track string) int {
	if tid, ok := w.tids[track]; ok {
		return tid
	}
	tid := len(w.tracks) + 1
	w.tids[track] = tid
	w.tracks = append(w.tracks, track)
	return tid
}

func (w *ChromeTraceWriter) record(track string, ev chromeEvent) {
	w.mu.Lock()
	if w.max > 0 && len(w.events) >= w.max {
		w.dropped++
		w.mu.Unlock()
		return
	}
	ev.tid = w.tidLocked(track)
	w.events = append(w.events, ev)
	w.mu.Unlock()
}

// Begin opens a span; nothing is recorded until End.
func (w *ChromeTraceWriter) Begin(track, name string) Span {
	return Span{tr: w, Track: track, Name: name, Start: time.Now()}
}

// End records the completed span as an "X" event.
func (w *ChromeTraceWriter) End(s Span) {
	if s.Start.IsZero() {
		return
	}
	w.record(s.Track, chromeEvent{
		name: s.Name, ph: 'X',
		ts: w.since(s.Start), dur: time.Since(s.Start).Microseconds(),
	})
}

// Instant records a zero-duration event.
func (w *ChromeTraceWriter) Instant(track, name string) {
	w.record(track, chromeEvent{name: name, ph: 'i', ts: w.since(time.Now())})
}

// Counter records a counter increment. The export accumulates deltas per
// (track, name) so the rendered counter track shows the running total.
func (w *ChromeTraceWriter) Counter(track, name string, delta int64) {
	w.record(track, chromeEvent{name: name, ph: 'C', ts: w.since(time.Now()), value: delta})
}

// Gauge records a level sample, exported as an absolute counter value.
func (w *ChromeTraceWriter) Gauge(track, name string, value int64) {
	// ph 'G' is internal shorthand; exported as a "C" sample holding the
	// absolute value rather than an accumulated delta.
	w.record(track, chromeEvent{name: name, ph: 'G', ts: w.since(time.Now()), value: value})
}

// FlowBegin records the sending half of a hop.
func (w *ChromeTraceWriter) FlowBegin(track, name string, id uint64) {
	w.record(track, chromeEvent{name: name, ph: 's', ts: w.since(time.Now()), id: id})
}

// FlowEnd records the receiving half of a hop.
func (w *ChromeTraceWriter) FlowEnd(track, name string, id uint64) {
	w.record(track, chromeEvent{name: name, ph: 'f', ts: w.since(time.Now()), id: id})
}

// Len reports how many events are buffered.
func (w *ChromeTraceWriter) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.events)
}

// Event is one recorded trace event in wall-clock form: timestamps are
// microseconds since the Unix epoch on the recording process's clock,
// rather than microseconds since trace start. It is the unit of
// cross-process trace shipping and of cluster-timeline merging.
type Event struct {
	Track string
	Name  string
	Ph    byte  // X, i, C, G, s, f
	Wall  int64 // event time, µs since the Unix epoch (recorder's clock)
	Dur   int64 // X only
	Value int64 // C (delta) and G (absolute level) only
	ID    uint64
}

func (w *ChromeTraceWriter) exportLocked() []Event {
	base := w.start.UnixMicro()
	out := make([]Event, len(w.events))
	for i, ev := range w.events {
		out[i] = Event{
			Track: w.tracks[ev.tid-1], Name: ev.name, Ph: ev.ph,
			Wall: base + ev.ts, Dur: ev.dur, Value: ev.value, ID: ev.id,
		}
	}
	return out
}

// Events snapshots the buffered events in wall-clock form without
// clearing them.
func (w *ChromeTraceWriter) Events() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.exportLocked()
}

// DrainEvents returns the buffered events in wall-clock form and clears
// the buffer, so the bound applies afresh to what is recorded next. The
// cumulative dropped count is returned alongside and keeps accumulating
// across drains. A cluster member drains once per round and ships the
// batch to the driver.
func (w *ChromeTraceWriter) DrainEvents() (events []Event, dropped int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	events = w.exportLocked()
	w.events = w.events[:0]
	return events, w.dropped
}

// Dropped reports how many events the bound discarded.
func (w *ChromeTraceWriter) Dropped() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// jsonEvent is the wire form of one trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   *uint64        `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents     []jsonEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteJSON renders the buffered trace. The writer stays usable — a
// session trace can be exported mid-flight and again later.
func (w *ChromeTraceWriter) WriteJSON(out io.Writer) error {
	w.mu.Lock()
	events := append([]chromeEvent(nil), w.events...)
	tracks := append([]string(nil), w.tracks...)
	dropped := w.dropped
	w.mu.Unlock()

	const pid = 1
	file := traceFile{DisplayTimeUnit: "ms", TraceEvents: []jsonEvent{
		{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": "diagnosis"}},
	}}
	for i, track := range tracks {
		file.TraceEvents = append(file.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: i + 1,
			Args: map[string]any{"name": track},
		})
	}

	// Counter deltas accumulate per (tid, name) so the exported samples
	// form a running total; gauges pass through as absolute levels.
	type counterKey struct {
		tid  int
		name string
	}
	totals := make(map[counterKey]int64)
	for _, ev := range events {
		je := jsonEvent{Name: ev.name, TS: ev.ts, PID: pid, TID: ev.tid}
		switch ev.ph {
		case 'X':
			dur := ev.dur
			je.Ph = "X"
			je.Dur = &dur
		case 'i':
			je.Ph = "i"
			je.Args = map[string]any{}
		case 'C':
			k := counterKey{ev.tid, ev.name}
			totals[k] += ev.value
			je.Ph = "C"
			je.Args = map[string]any{"value": totals[k]}
		case 'G':
			je.Ph = "C"
			je.Args = map[string]any{"value": ev.value}
		case 's', 'f':
			id := ev.id
			je.Ph = string(ev.ph)
			je.Cat = "msg"
			je.ID = &id
			if ev.ph == 'f' {
				je.BP = "e" // bind to the enclosing slice's end
			}
		}
		file.TraceEvents = append(file.TraceEvents, je)
	}
	if dropped > 0 {
		file.OtherData = map[string]any{"droppedEvents": dropped}
	}

	enc := json.NewEncoder(out)
	return enc.Encode(file)
}
