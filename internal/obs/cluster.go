package obs

import (
	"encoding/json"
	"io"
)

// ProcessTrace is one process's contribution to a merged cluster trace:
// the events it recorded (wall-clock form, its own clock) plus the offset
// that maps its clock onto the reference process's.
type ProcessTrace struct {
	// Name labels the process in the merged timeline (node name).
	Name string
	// Offset is the estimated clock offset of the recording process
	// relative to the reference process (remote − reference, µs); it is
	// subtracted from every event time during merging. 0 for the
	// reference process itself and for processes sharing its clock.
	Offset int64
	// Dropped counts events the recorder's bounded buffer discarded.
	Dropped int64
	Events  []Event
}

// Export snapshots the writer's buffered events as a ProcessTrace for
// merging, without clearing the buffer.
func (w *ChromeTraceWriter) Export(name string) ProcessTrace {
	return ProcessTrace{Name: name, Dropped: w.Dropped(), Events: w.Events()}
}

// WriteClusterJSON merges per-process traces into one Chrome trace-event
// JSON file: each ProcessTrace becomes a named process, each of its
// tracks a named thread, and all timestamps land on a single axis — the
// reference clock — by subtracting each process's Offset and rebasing so
// the earliest event sits at ts 0. Flow events ('s'/'f') bind by ID
// across processes, so a message sent on one node and handled on another
// renders as one arrow spanning the two process lanes.
func WriteClusterJSON(out io.Writer, procs []ProcessTrace) error {
	// Rebase: the earliest offset-corrected event across every process
	// defines ts 0 of the merged timeline.
	var base int64
	seen := false
	for _, p := range procs {
		for _, ev := range p.Events {
			if t := ev.Wall - p.Offset; !seen || t < base {
				base, seen = t, true
			}
		}
	}

	file := traceFile{DisplayTimeUnit: "ms"}
	type counterKey struct {
		pid, tid int
		name     string
	}
	totals := make(map[counterKey]int64)
	var dropped int64
	for i, p := range procs {
		pid := i + 1
		dropped += p.Dropped
		file.TraceEvents = append(file.TraceEvents, jsonEvent{
			Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": p.Name},
		})
		tids := make(map[string]int)
		for _, ev := range p.Events {
			tid, ok := tids[ev.Track]
			if !ok {
				tid = len(tids) + 1
				tids[ev.Track] = tid
				file.TraceEvents = append(file.TraceEvents, jsonEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"name": ev.Track},
				})
			}
			je := jsonEvent{Name: ev.Name, TS: ev.Wall - p.Offset - base, PID: pid, TID: tid}
			switch ev.Ph {
			case 'X':
				dur := ev.Dur
				je.Ph = "X"
				je.Dur = &dur
			case 'i':
				je.Ph = "i"
				je.Args = map[string]any{}
			case 'C':
				k := counterKey{pid, tid, ev.Name}
				totals[k] += ev.Value
				je.Ph = "C"
				je.Args = map[string]any{"value": totals[k]}
			case 'G':
				je.Ph = "C"
				je.Args = map[string]any{"value": ev.Value}
			case 's', 'f':
				id := ev.ID
				je.Ph = string(ev.Ph)
				je.Cat = "msg"
				je.ID = &id
				if ev.Ph == 'f' {
					je.BP = "e"
				}
			default:
				continue // unknown phase (future protocol): skip, don't corrupt
			}
			file.TraceEvents = append(file.TraceEvents, je)
		}
	}
	if dropped > 0 {
		file.OtherData = map[string]any{"droppedEvents": dropped}
	}
	return json.NewEncoder(out).Encode(file)
}
