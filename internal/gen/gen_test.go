package gen

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/diagnosis"
)

func TestPipelineShape(t *testing.T) {
	pn := Pipeline(4, 2)
	if got := len(pn.Net.Transitions()); got != 8 {
		t.Fatalf("transitions = %d, want 8", got)
	}
	if got := len(pn.Net.Peers()); got != 4 {
		t.Fatalf("peers = %d", got)
	}
	if _, exhaustive, err := pn.CheckSafe(1000); err != nil || !exhaustive {
		t.Fatalf("pipeline unsafe: %v", err)
	}
	// Exactly `branching` transitions enabled at any time.
	if got := len(pn.EnabledSet(pn.M0)); got != 2 {
		t.Fatalf("enabled = %d, want 2", got)
	}
}

func TestPipelineSeqDiagnosable(t *testing.T) {
	pn := Pipeline(3, 2)
	rng := rand.New(rand.NewSource(1))
	seq := PipelineSeq(pn, rng, 4)
	if len(seq) != 4 {
		t.Fatalf("seq = %v", seq)
	}
	d := diagnosis.Direct(pn, seq, diagnosis.DirectOptions{})
	if len(d) != 1 {
		t.Fatalf("pipeline observation has %d explanations, want exactly 1 (branch alarms are distinct)", len(d))
	}
}

func TestForkShapeAndConcurrency(t *testing.T) {
	pn := Fork(3, 2)
	if got := len(pn.Net.Transitions()); got != 6 {
		t.Fatalf("transitions = %d", got)
	}
	if _, exhaustive, err := pn.CheckSafe(1000); err != nil || !exhaustive {
		t.Fatalf("fork unsafe: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	seq := ForkSeq(pn, rng)
	if len(seq) != 6 {
		t.Fatalf("full execution observes %d alarms, want 6", len(seq))
	}
	// One configuration regardless of interleaving.
	d := diagnosis.Direct(pn, seq, diagnosis.DirectOptions{})
	if len(d) != 1 || len(d[0]) != 6 {
		t.Fatalf("fork diagnoses = %v", d.Keys())
	}
}

func TestTelecomScenario(t *testing.T) {
	pn := Telecom(3)
	if _, exhaustive, err := pn.CheckSafe(10000); err != nil || !exhaustive {
		t.Fatalf("telecom unsafe: %v", err)
	}
	// A failure congests the switch: fail then overload is explainable.
	rep, err := diagnosis.Run(pn,
		TelecomSeqFixed(), diagnosis.EngineDirect, diagnosis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) == 0 {
		t.Fatal("telecom fault scenario unexplained")
	}
	// The explanation must involve both a line peer and the switch peer.
	found := false
	for _, cfg := range rep.Diagnoses {
		hasLine, hasSwitch := false, false
		for _, e := range cfg {
			if len(e) > 4 && e[2] == 'l' {
				hasLine = true
			}
			if len(e) > 5 && e[2:5] == "sw." {
				hasSwitch = true
			}
		}
		if hasLine && hasSwitch {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cross-peer explanation: %v", rep.Diagnoses.Keys())
	}
}

func TestTelecomAllEnginesAgree(t *testing.T) {
	pn := Telecom(2)
	seq := TelecomSeqFixed()
	want, err := diagnosis.Run(pn, seq, diagnosis.EngineDirect, diagnosis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []diagnosis.Engine{diagnosis.EngineProduct, diagnosis.EngineNaive, diagnosis.EngineDQSQ} {
		rep, err := diagnosis.Run(pn, seq, e, diagnosis.Options{Timeout: 60 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !rep.Diagnoses.Equal(want.Diagnoses) {
			t.Fatalf("%v: %v != %v", e, rep.Diagnoses.Keys(), want.Diagnoses.Keys())
		}
	}
}

func TestRandomSafeProducesSafeNets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	made := 0
	for i := 0; i < 10; i++ {
		pn := RandomSafe(rng, Params{Peers: 2, Places: 5, Transitions: 4, Alarms: 2})
		if pn == nil {
			continue
		}
		made++
		if _, exhaustive, err := pn.CheckSafe(20000); err != nil || !exhaustive {
			t.Fatalf("RandomSafe returned unsafe net: %v", err)
		}
	}
	if made < 5 {
		t.Fatalf("only %d nets generated", made)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Pipeline(1, 1) },
		func() { Fork(0, 1) },
		func() { Telecom(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
