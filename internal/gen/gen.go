// Package gen generates parametric workloads for the benchmark harness:
// families of distributed safe Petri nets with tunable peer count, depth
// and branching, plus observed alarm sequences drawn from random
// executions. The families are chosen to stress the dimensions the paper's
// evaluation argues about: causal chains across peers (delegation depth in
// dQSQ), per-stage branching (the relevance pruning of Theorem 4), and
// cross-peer concurrency (interleaving explosion at the supervisor).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/alarm"
	"repro/internal/petri"
)

// Pipeline builds a cyclic pipeline over `peers` peers: one token walks
// the stages s0 -> s1 -> ... -> s_{peers-1} -> s0. Each hop is owned by
// the target stage's peer and emits that peer's alarm. With branching > 1,
// each hop has `branching` alternative transitions with distinct alarms —
// the observed alarm selects which fired, so diagnosis must prune the
// alternatives (the Theorem 4 workload).
func Pipeline(peers, branching int) *petri.PetriNet {
	if peers < 2 || branching < 1 {
		panic("gen: Pipeline needs peers >= 2, branching >= 1")
	}
	n := petri.NewNet()
	peerOf := func(i int) petri.Peer { return petri.Peer(fmt.Sprintf("w%d", i)) }
	for i := 0; i < peers; i++ {
		n.AddPlace(petri.NodeID(fmt.Sprintf("s%d", i)), peerOf(i))
	}
	for i := 0; i < peers; i++ {
		next := (i + 1) % peers
		for b := 0; b < branching; b++ {
			n.AddTransition(
				petri.NodeID(fmt.Sprintf("hop%d.%d", i, b)),
				peerOf(next),
				petri.Alarm(fmt.Sprintf("a%d", b)),
				[]petri.NodeID{petri.NodeID(fmt.Sprintf("s%d", i))},
				[]petri.NodeID{petri.NodeID(fmt.Sprintf("s%d", next))},
			)
		}
	}
	pn, err := petri.New(n, petri.NewMarking("s0"))
	if err != nil {
		panic(err)
	}
	return pn
}

// PipelineSeq is the alarm sequence of `steps` pipeline hops with the
// branch of each hop chosen by rng — the ground-truth execution whose
// diagnosis the benchmarks reconstruct.
func PipelineSeq(pn *petri.PetriNet, rng *rand.Rand, steps int) alarm.Seq {
	exec, _ := pn.RandomExecution(rng, steps)
	return petri.Interleave(rng, exec.ObservedAlarms())
}

// Fork builds `branches` independent chains of length `depth`, each on its
// own peer, all rooted in independent initial places. Every event of one
// branch is concurrent with every event of the others, so a k-branch
// d-deep fork has (k*d)!/(d!)^k interleavings but only one configuration —
// the concurrency workload.
func Fork(branches, depth int) *petri.PetriNet {
	if branches < 1 || depth < 1 {
		panic("gen: Fork needs branches >= 1, depth >= 1")
	}
	n := petri.NewNet()
	for b := 0; b < branches; b++ {
		peer := petri.Peer(fmt.Sprintf("br%d", b))
		for d := 0; d <= depth; d++ {
			n.AddPlace(petri.NodeID(fmt.Sprintf("p%d.%d", b, d)), peer)
		}
		for d := 0; d < depth; d++ {
			n.AddTransition(
				petri.NodeID(fmt.Sprintf("t%d.%d", b, d)),
				peer,
				petri.Alarm(fmt.Sprintf("a%d", d)),
				[]petri.NodeID{petri.NodeID(fmt.Sprintf("p%d.%d", b, d))},
				[]petri.NodeID{petri.NodeID(fmt.Sprintf("p%d.%d", b, d+1))},
			)
		}
	}
	marks := make([]petri.NodeID, branches)
	for b := 0; b < branches; b++ {
		marks[b] = petri.NodeID(fmt.Sprintf("p%d.0", b))
	}
	pn, err := petri.New(n, petri.NewMarking(marks...))
	if err != nil {
		panic(err)
	}
	return pn
}

// ForkSeq observes the full execution of a Fork net (every chain runs to
// the end) under a random interleaving.
func ForkSeq(pn *petri.PetriNet, rng *rand.Rand) alarm.Seq {
	exec, _ := pn.RandomExecution(rng, 1<<30)
	return petri.Interleave(rng, exec.ObservedAlarms())
}

// Telecom builds a small telecom-flavoured scenario: `lines` subscriber
// line cards, each owned by its own peer, sharing one switch peer. A line
// card can fail (alarm "fail"), which both marks the card as down and
// congests the switch; the switch then raises "overload" and recovers;
// a down card can be reset ("reset"). The switch's congestion place is
// shared, so line failures interact through the switch — the cross-peer
// recursion the paper motivates with.
func Telecom(lines int) *petri.PetriNet {
	if lines < 1 {
		panic("gen: Telecom needs lines >= 1")
	}
	n := petri.NewNet()
	const sw = petri.Peer("switch")
	n.AddPlace("sw.ok", sw)
	n.AddPlace("sw.congested", sw)
	n.AddTransition("sw.overload", sw, "overload",
		[]petri.NodeID{"sw.congested"}, []petri.NodeID{"sw.ok"})
	marks := []petri.NodeID{"sw.ok"}
	for i := 0; i < lines; i++ {
		peer := petri.Peer(fmt.Sprintf("line%d", i))
		up := petri.NodeID(fmt.Sprintf("l%d.up", i))
		down := petri.NodeID(fmt.Sprintf("l%d.down", i))
		n.AddPlace(up, peer)
		n.AddPlace(down, peer)
		n.AddTransition(petri.NodeID(fmt.Sprintf("l%d.fail", i)), peer, "fail",
			[]petri.NodeID{up, "sw.ok"}, []petri.NodeID{down, "sw.congested"})
		n.AddTransition(petri.NodeID(fmt.Sprintf("l%d.reset", i)), peer, "reset",
			[]petri.NodeID{down}, []petri.NodeID{up})
		marks = append(marks, up)
	}
	pn, err := petri.New(n, petri.NewMarking(marks...))
	if err != nil {
		panic(err)
	}
	return pn
}

// TelecomSeqFixed is the canonical fault scenario used by tests, examples
// and benchmarks: line 1 fails, the switch overloads, line 1 resets. The
// supervisor happens to receive the overload last (cross-peer order is
// arbitrary anyway).
func TelecomSeqFixed() alarm.Seq {
	return alarm.Seq{
		{Alarm: "fail", Peer: "line1"},
		{Alarm: "reset", Peer: "line1"},
		{Alarm: "overload", Peer: "switch"},
	}
}

// TelecomSeq runs the telecom net for `steps` firings and returns the
// supervisor's view.
func TelecomSeq(pn *petri.PetriNet, rng *rand.Rand, steps int) alarm.Seq {
	exec, _ := pn.RandomExecution(rng, steps)
	return petri.Interleave(rng, exec.ObservedAlarms())
}

// Params configures RandomSafe.
type Params struct {
	Peers       int // >= 1
	Places      int // >= 2
	Transitions int // >= 1
	Alarms      int // alphabet size, >= 1
	// MaxStates bounds the safety check; nets whose reachability exceeds
	// it are rejected.
	MaxStates int
}

// RandomSafe draws random nets with 1- or 2-parent transitions until one
// is safe (verified exhaustively up to MaxStates), or returns nil after
// 200 attempts. Deterministic for a given rng state.
func RandomSafe(rng *rand.Rand, p Params) *petri.PetriNet {
	if p.MaxStates == 0 {
		p.MaxStates = 20000
	}
	for attempt := 0; attempt < 200; attempt++ {
		n := petri.NewNet()
		var places []petri.NodeID
		for i := 0; i < p.Places; i++ {
			id := petri.NodeID(fmt.Sprintf("pl%d", i))
			n.AddPlace(id, petri.Peer(fmt.Sprintf("rp%d", i%p.Peers)))
			places = append(places, id)
		}
		for i := 0; i < p.Transitions; i++ {
			perm := rng.Perm(len(places))
			pre := []petri.NodeID{places[perm[0]]}
			if rng.Intn(2) == 0 && len(places) > 1 {
				pre = append(pre, places[perm[1]])
			}
			var post []petri.NodeID
			if rng.Intn(5) != 0 {
				post = append(post, places[perm[len(perm)-1]])
			}
			n.AddTransition(
				petri.NodeID(fmt.Sprintf("rt%d", i)),
				petri.Peer(fmt.Sprintf("rp%d", rng.Intn(p.Peers))),
				petri.Alarm(fmt.Sprintf("al%d", rng.Intn(p.Alarms))),
				pre, post,
			)
		}
		m0 := petri.Marking{}
		for _, pl := range places[:1+rng.Intn(len(places))] {
			m0[pl] = true
		}
		pn, err := petri.New(n, m0)
		if err != nil {
			continue
		}
		if _, exhaustive, err := pn.CheckSafe(p.MaxStates); err == nil && exhaustive {
			return pn
		}
	}
	return nil
}
