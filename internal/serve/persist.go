package serve

// Write-behind session durability. With Config.DataDir set, every append
// schedules a snapshot of the session to <DataDir>/<id>.dsnp on a
// background writer, graceful shutdown persists every live session
// synchronously (logging a per-session disposition), and a restarted
// server restores the files back into its table. The file is a
// core.Incremental checkpoint (internal/snapshot container) plus one
// ServeSession section carrying the table-level metadata: id, budget,
// alarm count, exhaustion flag and the delta-tracking state, so a
// restored session keeps producing exactly the deltas an uninterrupted
// one would.
//
// Deletion and eviction enqueue the file's removal on the same writer
// goroutine that performs writes, so a session's final file state is
// decided by the last intent in program order — a slow write can never
// resurrect a deleted session.

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snapnames"
)

// snapshotExt names session snapshot files inside the data dir.
const snapshotExt = ".dsnp"

// EncodeSnapshot writes the session — warm engine state plus table
// metadata — into f. It takes the session mutex, so the snapshot is a
// consistent post-append state. Closed sessions refuse with ErrClosed.
// The returned walSeq is the WAL coverage mark captured atomically with
// the encoded state: once this snapshot is on disk, log records up to
// walSeq are redundant for this session. (It must be captured here, not
// read after the file lands — a concurrent append would inflate it past
// what the snapshot actually holds.)
func (s *Session) EncodeSnapshot(f *snapshot.File) (walSeq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if err := s.inc.EncodeSnapshot(f); err != nil {
		return 0, err
	}
	w := f.Section(snapnames.ServeSession)
	w.String(s.ID)
	w.Uvarint(uint64(s.Facts))
	w.Int(s.Created.UnixNano())
	w.Int(s.lastUsed.Load())
	w.Uvarint(uint64(s.alarms))
	w.Bool(s.exhausted)
	w.Uvarint(uint64(s.prevDerived))
	w.Uvarint(uint64(s.prevMessages))
	keys := make([]string, 0, len(s.prevKeys))
	for k := range s.prevKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys) // map order would make snapshot bytes nondeterministic
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
	}
	w.Uvarint(s.walSeq)
	return s.walSeq, nil
}

// decodeSession restores a session from an opened snapshot, rewiring the
// runtime-only parts a checkpoint never carries: a fresh trace buffer
// and (when reg is non-nil) the metrics sink.
func decodeSession(o *snapshot.OpenFile, reg *Metrics) (*Session, error) {
	inc, err := core.DecodeIncremental(o)
	if err != nil {
		return nil, err
	}
	r, err := o.Section(snapnames.ServeSession)
	if err != nil {
		return nil, err
	}
	id := r.String()
	facts := int(r.Uvarint())
	created := r.Int()
	lastUsed := r.Int()
	alarms := int(r.Uvarint())
	exhausted := r.Bool()
	prevDerived := int(r.Uvarint())
	prevMessages := int(r.Uvarint())
	n := r.Count(1)
	prevKeys := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		prevKeys[r.String()] = true
	}
	walSeq := r.Uvarint()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if id == "" {
		return nil, fmt.Errorf("%w: serve session with empty id", snapshot.ErrCorrupt)
	}

	trace := obs.NewChromeTraceWriter(0)
	tracer := obs.Tracer(trace)
	if reg != nil {
		tracer = obs.Multi(trace, obs.NewMetricsSink(reg))
	}
	inc.SetTracer(tracer)

	s := &Session{
		ID: id, Engine: inc.Engine(), Facts: facts,
		Created: time.Unix(0, created),
		inc:     inc, trace: trace, peers: make(map[string]bool),
		alarms: alarms, exhausted: exhausted,
		prevDerived: prevDerived, prevMessages: prevMessages, prevKeys: prevKeys,
		walSeq: walSeq,
	}
	for _, p := range inc.System().Peers() {
		s.peers[string(p)] = true
	}
	s.lastUsed.Store(lastUsed)
	return s, nil
}

// persister owns the data dir. All file operations — write-behind
// snapshots and removals — run on its single goroutine, in intent order.
type persister struct {
	dir     string
	metrics *Metrics
	log     *slog.Logger
	wal     *serverWAL // nil when write-ahead logging is disabled

	// delay stalls each snapshot write (Config.SnapshotDelay): a test
	// hook widening the window in which state exists only in the WAL.
	delay time.Duration

	mu    sync.Mutex
	dirty map[string]*Session // latest intent per session; nil = remove file

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newPersister(dir string, metrics *Metrics, log *slog.Logger, wal *serverWAL, delay time.Duration) *persister {
	p := &persister{
		dir: dir, metrics: metrics, log: log, wal: wal, delay: delay,
		dirty: make(map[string]*Session),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *persister) path(id string) string { return filepath.Join(p.dir, id+snapshotExt) }

// markDirty schedules a write-behind snapshot. Appends between two
// flushes coalesce: only the latest state is written.
func (p *persister) markDirty(s *Session) {
	p.mu.Lock()
	p.dirty[s.ID] = s
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// forget schedules the removal of the session's snapshot file — a
// deleted or evicted session must stay gone across a restart.
func (p *persister) forget(id string) {
	p.mu.Lock()
	p.dirty[id] = nil
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *persister) loop() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.flush()
		}
	}
}

// flush applies every pending intent once.
func (p *persister) flush() {
	p.mu.Lock()
	batch := p.dirty
	p.dirty = make(map[string]*Session)
	p.mu.Unlock()
	for id, s := range batch {
		if s == nil {
			p.remove(id)
			continue
		}
		if _, err := p.write(s); err != nil && err != ErrClosed {
			p.log.Error("session snapshot failed", "session", id, "err", err)
		}
	}
}

// remove deletes the session's snapshot file and releases its WAL
// records: with the file gone, nothing on disk can resurrect the
// session, so even a pending delete intent is compactable.
func (p *persister) remove(id string) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	os.Remove(p.path(id)) //nolint:errcheck // absent is as good as removed
	if p.wal != nil {
		p.wal.removeApplied(id)
		p.wal.compact()
	}
}

// write snapshots one session to its file, feeding the snapshot metrics.
// Once the file is durably on disk, the WAL records it covers are
// released for compaction.
func (p *persister) write(s *Session) (int, error) {
	f := snapshot.New()
	walSeq, err := s.EncodeSnapshot(f)
	if err != nil {
		return 0, err
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	start := time.Now()
	n, err := snapshot.WriteFile(p.path(s.ID), f)
	if err != nil {
		return 0, err
	}
	p.metrics.Observe("snapshot_write_seconds", time.Since(start))
	p.metrics.Add("snapshot_bytes_total", int64(n))
	s.lastSnap.Store(time.Now().UnixNano())
	if p.wal != nil {
		p.wal.covered(s.ID, walSeq)
		p.wal.compact()
	}
	return n, nil
}

// close stops the writer goroutine, abandoning pending intents (shutdown
// follows with a synchronous drain pass over the live table).
func (p *persister) close() {
	close(p.stop)
	<-p.done
}

// drain persists every live session synchronously, logging a per-session
// disposition: persisted (with the snapshot size) or dropped (with why).
// Pending removals are applied first so deleted sessions stay deleted.
func (p *persister) drain(live []*Session) {
	p.mu.Lock()
	batch := p.dirty
	p.dirty = make(map[string]*Session)
	p.mu.Unlock()
	for id, s := range batch {
		if s == nil {
			p.remove(id)
		}
	}
	for _, s := range live {
		if n, err := p.write(s); err != nil {
			p.log.Warn("drain: session dropped", "session", s.ID, "err", err)
		} else {
			p.log.Info("drain: session persisted", "session", s.ID, "bytes", n)
		}
	}
}

// restoreSessions loads every snapshot in the data dir back into the
// store. A file that fails to open, decode or fit the table is logged
// and skipped — a corrupt checkpoint must not keep the server down.
func restoreSessions(dir string, st *Store, metrics *Metrics, log *slog.Logger) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Error("snapshot dir unreadable", "dir", dir, "err", err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		path := filepath.Join(dir, name)
		sess, err := LoadSessionFile(path, metrics)
		if err != nil {
			log.Warn("session not restored", "file", name, "err", err)
			continue
		}
		if err := st.Adopt(sess); err != nil {
			log.Warn("session not restored", "file", name, "err", err)
			continue
		}
		metrics.Add("snapshot_restore_total", 1)
		log.Info("session restored", "session", sess.ID, "alarms", sess.alarms)
	}
}

// LoadSessionFile opens one session snapshot off the data dir — restore
// uses it, and operators (or tests) can inspect what a file holds
// without a server. metrics may be nil.
func LoadSessionFile(path string, metrics *Metrics) (*Session, error) {
	o, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sess, err := decodeSession(o, metrics)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(path); err == nil {
		// The file IS the session's last snapshot; its mtime is the honest
		// snapshot age across the restart.
		sess.lastSnap.Store(fi.ModTime().UnixNano())
	}
	return sess, nil
}
