package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/parser"
)

// Sentinel errors mapped to HTTP statuses by the handlers.
var (
	// ErrExhausted: the session's fact budget is spent; the warm engine
	// state is unusable and the session only accepts GET/DELETE (429).
	ErrExhausted = errors.New("serve: session budget exhausted")
	// ErrClosed: the session was deleted or evicted mid-request (404).
	ErrClosed = errors.New("serve: session closed")
	// ErrOverloaded: the global fact budget or session table cannot admit
	// a new session (503).
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = errors.New("serve: server draining")
	// ErrReadOnly: the server is a replication follower; mutations are
	// refused until a promote (503).
	ErrReadOnly = errors.New("serve: read-only replica (following a primary)")
)

// ParseEngine maps the wire names onto engines. Empty defaults to dQSQ —
// the engine with a genuinely incremental warm session.
func ParseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "dqsq":
		return core.DQSQ, nil
	case "direct":
		return core.Direct, nil
	case "product":
		return core.Product, nil
	case "naive":
		return core.Naive, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want direct | product | naive | dqsq)", name)
	}
}

// EngineName is the inverse of ParseEngine (Engine.String formats for
// humans, not for the wire).
func EngineName(e core.Engine) string {
	switch e {
	case core.Direct:
		return "direct"
	case core.Product:
		return "product"
	case core.Naive:
		return "naive"
	default:
		return "dqsq"
	}
}

// Session is one streaming diagnosis conversation: a pinned, parsed,
// safety-checked net plus a warm incremental handle. Appends are
// serialized per session by its mutex; metadata reads (State) are safe
// concurrently with an in-flight append.
type Session struct {
	ID      string
	Engine  core.Engine
	Facts   int // reserved per-session fact budget (counts against the global budget)
	Created time.Time
	peers   map[string]bool // net peers, fixed at creation

	lastUsed atomic.Int64 // unix nanoseconds; TTL sweeps and GET read it
	lastSnap atomic.Int64 // unix nanoseconds of the last persisted snapshot; 0 = never
	closed   atomic.Bool  // set lock-free by eviction, so the store never waits on an evaluation

	// trace buffers the session's evaluation events (per-peer spans,
	// message flows, engine counters) for GET /v1/sessions/{id}/trace.
	// The writer is internally locked, so exporting is safe concurrently
	// with an append in flight.
	trace *obs.ChromeTraceWriter

	mu           sync.Mutex
	inc          *core.Incremental
	alarms       int
	exhausted    bool
	prevKeys     map[string]bool // diagnosis keys of the previous report, for deltas
	prevDerived  int             // cumulative Derived after the previous append (DQSQ)
	prevMessages int             // cumulative Messages after the previous append (DQSQ)

	// wal, when non-nil, receives a record for every acknowledged append.
	// walSeq is the sequence of the last WAL record concerning this
	// session (create or append); a snapshot carrying it tells the boot
	// replay which log prefix the snapshot already covers.
	wal    *serverWAL
	walSeq uint64
}

// newSession warms an incremental handle instrumented with two tracer
// consumers: the session's own bounded Chrome trace buffer, and (when reg
// is non-nil) a metrics sink folding engine counters into the server
// registry — that is how /metrics gains ddatalog_facts_derived_total,
// dist_messages_total{from,to}, dqsq_subqueries_total,
// diagnosis_unfolding_nodes and the diagnosis_append_engine_seconds
// histogram. Counters accumulate across sessions; gauges report the most
// recently evaluated session.
func newSession(id string, sys *core.System, engine core.Engine, facts int, now time.Time, reg *Metrics) (*Session, error) {
	trace := obs.NewChromeTraceWriter(0)
	tracer := obs.Tracer(trace)
	if reg != nil {
		tracer = obs.Multi(trace, obs.NewMetricsSink(reg))
	}
	inc, err := sys.NewIncremental(engine, core.Options{
		Budget: datalog.Budget{MaxFacts: facts},
		Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{ID: id, Engine: engine, Facts: facts, Created: now, inc: inc,
		trace: trace, peers: make(map[string]bool)}
	for _, p := range sys.Peers() {
		s.peers[string(p)] = true
	}
	s.lastUsed.Store(now.UnixNano())
	return s, nil
}

// HasPeer reports whether the session's net has the peer — handlers
// reject alarms from unknown peers as bad requests before evaluating.
func (s *Session) HasPeer(peer string) bool { return s.peers[peer] }

// WriteTrace exports the session's trace buffer as Chrome trace-event
// JSON (chrome://tracing, Perfetto). Safe concurrently with appends.
func (s *Session) WriteTrace(w io.Writer) error { return s.trace.WriteJSON(w) }

// Alarms counts the alarms appended over the session's lifetime.
func (s *Session) Alarms() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alarms
}

// Touch records use for TTL accounting.
func (s *Session) Touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// LastUsed returns the last time the session served a request.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Close marks the session dead. Idempotent and lock-free: the store
// calls it under its own lock during eviction, so it must never wait on
// an evaluation in flight. That append finishes normally; later calls
// fail with ErrClosed.
func (s *Session) Close() { s.closed.Store(true) }

// AppendResult is the outcome of one append: the report over the whole
// sequence so far, plus the delta against the previous report.
type AppendResult struct {
	Report  *core.Report
	Added   []string // diagnosis keys new in this report
	Removed []string // diagnosis keys the new alarms ruled out
	Alarms  int      // total alarms appended over the session's lifetime
	// DerivedDelta counts the facts this append materialized: the growth
	// of the cumulative count for the warm DQSQ session, the whole run
	// for the re-evaluating engines. Feeds the
	// diagnosed_facts_materialized_total metric.
	DerivedDelta int
	// MessagesDelta counts the peer messages this append exchanged, on
	// the same cumulative-vs-whole-run split as DerivedDelta. Feeds the
	// diagnosed_messages_total metric (adding the cumulative Report
	// figure every round would double-count all earlier rounds).
	MessagesDelta int
}

// Append feeds alarms to the warm handle and computes the diagnosis of
// the full sequence so far. Budget exhaustion poisons the session
// (ErrExhausted now and on every later call). For the re-evaluating
// engines a timeout leaves the session usable (the next append re-runs
// from scratch); for DQSQ any evaluation failure poisons it too — the
// warm engine may have partially absorbed the queued alarm facts, so no
// later answer would be trustworthy. Input errors always leave the
// session usable.
//
// When the session has a WAL, the append is logged (and, under
// fsync=always, fsynced) before Append returns success — that is the
// durable point: a crash after the HTTP 200 replays the append, a crash
// before it leaves the session exactly as if the append never happened.
func (s *Session) Append(obs []alarm.Obs, timeout time.Duration) (*AppendResult, error) {
	return s.append(obs, timeout, 0)
}

// replayAppend re-applies a WAL record during boot replay: the record is
// already in the log, so nothing is re-logged; its sequence is adopted
// as the session's coverage mark instead.
func (s *Session) replayAppend(obs []alarm.Obs, timeout time.Duration, seq uint64) (*AppendResult, error) {
	return s.append(obs, timeout, seq)
}

func (s *Session) append(obs []alarm.Obs, timeout time.Duration, replaySeq uint64) (*AppendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed.Load():
		return nil, ErrClosed
	case s.exhausted:
		return nil, ErrExhausted
	}
	rep, err := s.inc.Append(obs, timeout)
	if err != nil {
		switch {
		case errors.Is(err, datalog.ErrBudget):
			s.exhausted = true
			return nil, fmt.Errorf("%w: %v", ErrExhausted, err)
		case errors.Is(err, core.ErrPoisoned):
			s.exhausted = true
			return nil, fmt.Errorf("%w: %v", ErrExhausted, err)
		case s.Engine == core.DQSQ && timeoutErr(err):
			// First failure: surface the timeout (504) but mark the
			// session exhausted so later appends 429 immediately
			// instead of re-entering the poisoned handle.
			s.exhausted = true
		}
		return nil, err
	}
	if rep.Truncated {
		s.exhausted = true
		return nil, fmt.Errorf("%w: evaluation truncated", ErrExhausted)
	}
	s.alarms += len(obs)

	delta := rep.Derived
	msgDelta := rep.Messages
	if s.Engine == core.DQSQ {
		delta = rep.Derived - s.prevDerived
		msgDelta = rep.Messages - s.prevMessages
	}
	s.prevDerived = rep.Derived
	s.prevMessages = rep.Messages

	keys := make(map[string]bool, len(rep.Diagnoses))
	res := &AppendResult{Report: rep, Alarms: s.alarms, DerivedDelta: delta, MessagesDelta: msgDelta}
	for _, k := range rep.Diagnoses.Keys() {
		keys[k] = true
		if !s.prevKeys[k] {
			res.Added = append(res.Added, k)
		}
	}
	for k := range s.prevKeys {
		if !keys[k] {
			res.Removed = append(res.Removed, k)
		}
	}
	s.prevKeys = keys

	switch {
	case replaySeq != 0:
		s.walSeq = replaySeq
	case s.wal != nil:
		// Log AFTER the evaluation so only appends that actually landed in
		// the warm engine are replayed. The canonical text round-trips:
		// core.ParseAlarms(parser.FormatAlarms(obs)) == obs.
		seq, err := s.wal.logAppend(s.ID, parser.FormatAlarms(alarm.Seq(obs)))
		if err != nil {
			// The in-memory state absorbed the alarms but the durable log
			// did not: the two have diverged, so no later answer from this
			// session can be trusted across a restart. Poison it.
			s.exhausted = true
			return nil, walAppendError(err)
		}
		s.walSeq = seq
	}
	return res, nil
}

// WALSeq reads the session's WAL coverage mark.
func (s *Session) WALSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSeq
}

// setWALSeq raises the coverage mark (the create record's sequence,
// assigned by the handler after the store published the session).
func (s *Session) setWALSeq(seq uint64) {
	s.mu.Lock()
	if seq > s.walSeq {
		s.walSeq = seq
	}
	s.mu.Unlock()
}

// attachWAL wires the session to the server's WAL.
func (s *Session) attachWAL(w *serverWAL) {
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
}

// State is a point-in-time snapshot for GET responses.
type State struct {
	ID        string
	Engine    core.Engine
	Facts     int
	Created   time.Time
	LastUsed  time.Time
	LastSnap  time.Time // zero if never persisted
	Alarms    int
	Exhausted bool
	Seq       alarm.Seq
	Report    *core.Report // nil before the first append
}

// Snapshot reads the session state. It takes the session mutex, so it
// serializes against appends (an evaluation in flight delays it).
func (s *Session) Snapshot() (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return State{}, ErrClosed
	}
	st := State{
		ID:        s.ID,
		Engine:    s.Engine,
		Facts:     s.Facts,
		Created:   s.Created,
		LastUsed:  s.LastUsed(),
		Alarms:    s.alarms,
		Exhausted: s.exhausted,
		Seq:       s.inc.Seq(),
		Report:    s.inc.Report(),
	}
	if ns := s.lastSnap.Load(); ns != 0 {
		st.LastSnap = time.Unix(0, ns)
	}
	return st, nil
}

// timeoutErr reports whether err is an evaluation timeout (mapped to 504).
func timeoutErr(err error) bool { return errors.Is(err, dist.ErrTimeout) }
