package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMetricsWriteTextGolden pins the exposition format: plain counters,
// func gauges and settable levels interleaved in one sorted block
// (labeled series sort after their plain siblings), then histograms as
// cumulative _bucket/_sum/_count.
func TestMetricsWriteTextGolden(t *testing.T) {
	m := NewMetrics()
	m.Add("ddatalog_facts_derived_total", 40)
	m.Add("ddatalog_facts_derived_total", 2)
	m.Add(`dist_messages_total{from="p1",to="p2"}`, 7)
	m.Gauge("diagnosed_sessions_active", func() int64 { return 3 })
	m.GaugeFloat("go_gc_pause_seconds", func() float64 { return 0.125 })
	m.SetGauge("diagnosis_unfolding_nodes", 19)
	m.SetGauge("diagnosis_unfolding_nodes", 11) // levels overwrite
	m.Observe("h_seconds", 3*time.Millisecond)
	m.Observe("h_seconds", 2*time.Second)

	var buf bytes.Buffer
	m.WriteText(&buf)
	want := `ddatalog_facts_derived_total 42
diagnosed_sessions_active 3
diagnosis_unfolding_nodes 11
dist_messages_total{from="p1",to="p2"} 7
go_gc_pause_seconds 0.125
h_seconds_bucket{le="0.001"} 0
h_seconds_bucket{le="0.005"} 1
h_seconds_bucket{le="0.025"} 1
h_seconds_bucket{le="0.1"} 1
h_seconds_bucket{le="0.5"} 1
h_seconds_bucket{le="1"} 1
h_seconds_bucket{le="5"} 2
h_seconds_bucket{le="30"} 2
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 2.003
h_seconds_count 2
`
	if got := buf.String(); got != want {
		t.Fatalf("WriteText mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRuntimeGaugesExported: every server /metrics scrape carries the Go
// runtime health gauges, live-sampled, plus the trace-drop counter.
func TestRuntimeGaugesExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts, createRequest{Net: exampleNetText(t)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, name := range []string{"go_goroutines ", "go_heap_bytes ", "go_gc_pause_seconds ", "trace_events_dropped_total "} {
		if !strings.Contains(text, "\n"+name) && !strings.HasPrefix(text, name) {
			t.Errorf("/metrics missing %s", strings.TrimSpace(name))
		}
	}
	if got := metricValue(t, ts, "go_goroutines"); got <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", got)
	}
	if got := metricValue(t, ts, "go_heap_bytes"); got <= 0 {
		t.Errorf("go_heap_bytes = %d, want > 0", got)
	}
}

// TestEngineSeriesExported drives a session end to end and checks the
// engine-level series the tracer feeds into /metrics.
func TestEngineSeriesExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	for _, a := range quickstartAlarms {
		var resp appendResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/alarms",
			appendRequest{Alarms: a}, &resp); code != http.StatusOK {
			t.Fatalf("append %q: status %d", a, code)
		}
	}

	for _, name := range []string{
		"ddatalog_facts_derived_total",
		"dqsq_subqueries_total",
		"diagnosis_unfolding_nodes",
	} {
		if got := metricValue(t, ts, name); got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}
	if got := metricValue(t, ts, "diagnosis_append_engine_seconds_count"); got != int64(len(quickstartAlarms)) {
		t.Errorf("diagnosis_append_engine_seconds_count = %d, want %d", got, len(quickstartAlarms))
	}

	// At least one per-channel message series, and the channel totals must
	// agree with the aggregate message counter.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	pairTotal := int64(0)
	pairs := 0
	byteTotal := int64(0)
	bytePairs := 0
	for _, line := range strings.Split(body.String(), "\n") {
		msgs := strings.HasPrefix(line, "dist_messages_total{")
		if !msgs && !strings.HasPrefix(line, "dist_bytes_total{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad series line %q", line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if msgs {
			pairs++
			pairTotal += v
		} else {
			bytePairs++
			byteTotal += v
		}
	}
	if pairs == 0 {
		t.Fatal("no dist_messages_total{from,to} series exported")
	}
	if agg := metricValue(t, ts, "diagnosed_messages_total"); pairTotal != agg {
		t.Errorf("sum of per-channel series = %d, diagnosed_messages_total = %d", pairTotal, agg)
	}
	// Every channel that carried a message must also report a positive
	// byte count: a tuple on the wire is never free.
	if bytePairs != pairs {
		t.Errorf("dist_bytes_total has %d series, dist_messages_total has %d", bytePairs, pairs)
	}
	if byteTotal <= pairTotal {
		t.Errorf("dist_bytes_total sum = %d, want > message count %d (every message is >1 byte)",
			byteTotal, pairTotal)
	}
}

// TestTraceEndpoint checks GET /v1/sessions/{id}/trace returns loadable
// Chrome trace-event JSON with spans and message-flow events.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	var resp appendResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/alarms",
		appendRequest{Alarms: quickstartAlarms[0]}, &resp); code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}

	httpResp, err := http.Get(ts.URL + "/v1/sessions/" + sess.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", httpResp.StatusCode)
	}
	var file struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	spans, flows := 0, 0
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "s":
			flows++
		}
	}
	if spans == 0 || flows == 0 {
		t.Fatalf("trace has %d spans, %d flow events; want both > 0", spans, flows)
	}

	if r2, err := http.Get(ts.URL + "/v1/sessions/nope/trace"); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("trace of unknown session: status %d", r2.StatusCode)
		}
	}
}
