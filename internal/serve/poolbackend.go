package serve

// The worker side of the session pool. PoolBackend adapts a session
// Store to pool.Backend, so a peerd process can execute the session
// operations a diagnosed frontend ships to it. Every method returns the
// exact JSON body the HTTP handler would have written for the same
// operation — that is what makes a pooled session's responses
// byte-identical to a local one's, the pool tentpole's correctness bar.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/snapshot"
	"repro/internal/wire"
)

// ErrBadInput marks client-caused failures: the pool maps it to SessBad
// and the frontend to 400, mirroring the local badRequest path.
var ErrBadInput = errors.New("bad request")

// PoolBackend executes pooled session operations against a Store.
type PoolBackend struct {
	store   *Store
	metrics *Metrics
}

// NewPoolBackend wraps the store. metrics may be nil.
func NewPoolBackend(store *Store, metrics *Metrics) *PoolBackend {
	return &PoolBackend{store: store, metrics: metrics}
}

// encodeBody marshals exactly like Server.writeJSON (two-space indent,
// trailing newline), so worker-rendered bodies are byte-identical to
// locally rendered ones.
func encodeBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // in-memory encode of plain structs
	return buf.Bytes()
}

// Create implements pool.Backend: admit a session under the
// frontend-assigned ID. Admission reuses Adopt's budget semantics — a
// full table or spent global budget refuses with ErrOverloaded, which
// the pool classifies as SessSaturated and places elsewhere.
func (b *PoolBackend) Create(id, netText, engineName string, maxFacts int) ([]byte, error) {
	if netText == "" {
		return nil, fmt.Errorf("%w: missing net", ErrBadInput)
	}
	engine, err := ParseEngine(engineName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	sys, err := core.LoadNet(netText)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	facts := maxFacts
	if facts <= 0 {
		facts = b.store.cfg.SessionFacts
	}
	sess, err := newSession(id, sys, engine, facts, time.Now(), b.metrics)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if err := b.store.Adopt(sess); err != nil {
		return nil, err
	}
	if b.metrics != nil {
		b.metrics.Add("diagnosed_sessions_created_total", 1)
	}
	peers := []string{}
	for _, p := range sys.Peers() {
		peers = append(peers, string(p))
	}
	return encodeBody(createResponse{
		ID: id, Engine: EngineName(engine), Peers: peers, MaxFacts: facts,
	}), nil
}

// Append implements pool.Backend: the same parse/validate/evaluate path
// as handleAppend, returning its response body.
func (b *PoolBackend) Append(id, alarms string, timeout time.Duration) ([]byte, error) {
	sess, ok := b.store.Get(id, time.Now())
	if !ok {
		return nil, ErrClosed
	}
	seq, err := core.ParseAlarms(alarms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("%w: no alarms in request", ErrBadInput)
	}
	for _, o := range seq {
		if !sess.HasPeer(string(o.Peer)) {
			return nil, fmt.Errorf("%w: alarm from unknown peer %q", ErrBadInput, o.Peer)
		}
	}
	start := time.Now()
	res, err := sess.Append(seq, timeout)
	if b.metrics != nil {
		b.metrics.Observe("diagnosed_append_seconds", time.Since(start))
	}
	if err != nil {
		if b.metrics != nil {
			b.metrics.Add("diagnosed_append_errors_total", 1)
		}
		return nil, err
	}
	if b.metrics != nil {
		b.metrics.Add("diagnosed_alarms_total", int64(len(seq)))
		b.metrics.Add("diagnosed_appends_total", 1)
		b.metrics.Add("diagnosed_facts_materialized_total", int64(res.DerivedDelta))
		b.metrics.Add("diagnosed_messages_total", int64(res.MessagesDelta))
	}
	added, removed := res.Added, res.Removed
	if added == nil {
		added = []string{}
	}
	if removed == nil {
		removed = []string{}
	}
	return encodeBody(appendResponse{
		Alarms:       res.Alarms,
		Added:        added,
		Removed:      removed,
		DerivedDelta: res.DerivedDelta,
		Report:       toReportJSON(res.Report),
	}), nil
}

// Get implements pool.Backend: the session-state body of handleGet.
func (b *PoolBackend) Get(id string) ([]byte, error) {
	sess, ok := b.store.Get(id, time.Now())
	if !ok {
		return nil, ErrClosed
	}
	st, err := sess.Snapshot()
	if err != nil {
		return nil, err
	}
	resp := sessionResponse{
		ID:        st.ID,
		Engine:    EngineName(st.Engine),
		MaxFacts:  st.Facts,
		Created:   st.Created,
		LastUsed:  st.LastUsed,
		Alarms:    st.Alarms,
		Exhausted: st.Exhausted,
		Seq:       parser.FormatAlarms(st.Seq),
		Report:    toReportJSON(st.Report),
	}
	if !st.LastSnap.IsZero() {
		age := time.Since(st.LastSnap).Seconds()
		resp.SnapshotAgeSeconds = &age
	}
	return encodeBody(resp), nil
}

// Delete implements pool.Backend.
func (b *PoolBackend) Delete(id string) error {
	if !b.store.Delete(id) {
		return ErrClosed
	}
	if b.metrics != nil {
		b.metrics.Add("diagnosed_sessions_deleted_total", 1)
	}
	return nil
}

// Ship implements pool.Backend: the session's checkpoint bytes, the
// same container the write-behind persister puts on disk.
func (b *PoolBackend) Ship(id string) ([]byte, error) {
	sess, ok := b.store.Get(id, time.Now())
	if !ok {
		return nil, ErrClosed
	}
	f := snapshot.New()
	if _, err := sess.EncodeSnapshot(f); err != nil {
		return nil, err
	}
	return f.Bytes(), nil
}

// Load implements pool.Backend: install a shipped checkpoint, replacing
// any copy already live under the ID (a failover flap may have left a
// stale one).
func (b *PoolBackend) Load(id string, checkpoint []byte) error {
	o, err := snapshot.Open(checkpoint)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	sess, err := decodeSession(o, b.metrics)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if sess.ID != id {
		return fmt.Errorf("%w: checkpoint is for session %s, not %s", ErrBadInput, sess.ID, id)
	}
	b.store.Delete(id)
	if err := b.store.Adopt(sess); err != nil {
		return err
	}
	if b.metrics != nil {
		b.metrics.Add("snapshot_restore_total", 1)
	}
	return nil
}

// Classify implements pool.Backend: the wire-code analogue of
// Server.fail's error→status mapping.
func (b *PoolBackend) Classify(err error) (code uint32, retryAfterMS uint32) {
	switch {
	case errors.Is(err, ErrBadInput):
		return wire.SessBad, 0
	case errors.Is(err, ErrExhausted):
		return wire.SessExhausted, 0
	case errors.Is(err, ErrOverloaded):
		return wire.SessSaturated, 1000
	case errors.Is(err, ErrDraining):
		return wire.SessDraining, 1000
	case errors.Is(err, ErrClosed):
		return wire.SessNotFound, 0
	case timeoutErr(err):
		return wire.SessTimeout, 0
	default:
		return wire.SessRetry, 0
	}
}

// Active implements pool.Backend.
func (b *PoolBackend) Active() int { return b.store.Len() }
