package serve

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"sync"

	"repro/internal/core"
)

// StoreConfig bounds the session table.
type StoreConfig struct {
	// MaxSessions caps the table; creating one past the cap evicts the
	// least-recently-used session. 0 means 64.
	MaxSessions int
	// SessionFacts is the default per-session fact budget when a create
	// request does not name one. 0 means 1<<20.
	SessionFacts int
	// GlobalFacts caps the sum of reserved per-session budgets; a create
	// that would overflow it is load-shed with ErrOverloaded, even below
	// MaxSessions. 0 means 64 << 20.
	GlobalFacts int
	// TTL expires sessions idle longer than this on Sweep. 0 means 15min.
	TTL time.Duration
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.SessionFacts == 0 {
		c.SessionFacts = 1 << 20
	}
	if c.GlobalFacts == 0 {
		c.GlobalFacts = 64 << 20
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	return c
}

// Store is the bounded session table: a map plus an LRU list, a global
// reserved-fact budget, and TTL sweeping. All methods are safe for
// concurrent use. Eviction only unlinks a session from the table — an
// append already in flight on the evicted session finishes on its own
// mutex and the session is collected afterwards.
type Store struct {
	cfg     StoreConfig
	metrics *Metrics

	mu       sync.Mutex
	sessions map[string]*list.Element // value: *Session
	lru      *list.List               // front = most recently used
	reserved int                      // sum of live sessions' fact budgets
	nextID   uint64
	persist  *persister // nil when persistence is disabled
	wal      *serverWAL // nil when write-ahead logging is disabled
}

// SetPersister attaches (or, with nil, detaches) the durability layer:
// removed sessions forget their snapshot files. Shutdown detaches it
// before Clear so the drain-persisted files survive the final close.
func (st *Store) SetPersister(p *persister) {
	st.mu.Lock()
	st.persist = p
	st.mu.Unlock()
}

// SetWAL attaches the write-ahead log: sessions created or adopted from
// now on log their appends, and sessions already live (snapshot-restored
// before the log was opened) are wired up retroactively.
func (st *Store) SetWAL(w *serverWAL) {
	st.mu.Lock()
	st.wal = w
	live := make([]*Session, 0, st.lru.Len())
	for el := st.lru.Front(); el != nil; el = el.Next() {
		live = append(live, el.Value.(*Session))
	}
	st.mu.Unlock()
	for _, sess := range live {
		sess.attachWAL(w)
	}
}

// NewStore builds an empty table. metrics may be nil.
func NewStore(cfg StoreConfig, metrics *Metrics) *Store {
	if metrics == nil {
		metrics = NewMetrics()
	}
	st := &Store{
		cfg:      cfg.withDefaults(),
		metrics:  metrics,
		sessions: make(map[string]*list.Element),
		lru:      list.New(),
	}
	metrics.Gauge("diagnosed_sessions_active", func() int64 { return int64(st.Len()) })
	metrics.Gauge("diagnosed_facts_reserved", func() int64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return int64(st.reserved)
	})
	metrics.Gauge("trace_events_dropped_total", func() int64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		var total int64
		for el := st.lru.Front(); el != nil; el = el.Next() {
			total += el.Value.(*Session).trace.Dropped()
		}
		return total
	})
	return st
}

// Len counts live sessions.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

func (st *Store) newID() string {
	st.nextID++
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// the counter alone rather than crashing the server. The counter
		// still advances, so fallback IDs stay unique.
		return fmt.Sprintf("s%06d", st.nextID)
	}
	return fmt.Sprintf("s%06d-%s", st.nextID, hex.EncodeToString(b[:]))
}

// Create admits a new session or load-sheds with ErrOverloaded. facts=0
// takes the configured per-session default. The expensive part — parsing
// the net and warming the engine — runs outside the table lock; the
// budget is reserved first and released if setup fails.
func (st *Store) Create(sys *core.System, engine core.Engine, facts int, now time.Time) (*Session, error) {
	if facts <= 0 {
		facts = st.cfg.SessionFacts
	}

	st.mu.Lock()
	if st.reserved+facts > st.cfg.GlobalFacts {
		st.mu.Unlock()
		st.metrics.Add("diagnosed_sessions_shed_total", 1)
		return nil, fmt.Errorf("%w: global fact budget exhausted (%d reserved of %d)",
			ErrOverloaded, st.reserved, st.cfg.GlobalFacts)
	}
	st.reserved += facts
	evicted := 0
	for len(st.sessions) >= st.cfg.MaxSessions {
		if !st.evictOldestLocked() {
			break
		}
		evicted++
	}
	id := st.newID()
	st.mu.Unlock()
	if evicted > 0 {
		st.metrics.Add("diagnosed_sessions_evicted_total", int64(evicted))
	}

	sess, err := newSession(id, sys, engine, facts, now, st.metrics)
	if err != nil {
		st.mu.Lock()
		st.reserved -= facts
		st.mu.Unlock()
		return nil, err
	}

	// Setup ran unlocked, so concurrent creates may have refilled the
	// table; evict again before inserting so MaxSessions holds at all
	// times, not just transiently.
	st.mu.Lock()
	sess.wal = st.wal // pre-publication: no lock on the session needed
	evicted = 0
	for len(st.sessions) >= st.cfg.MaxSessions {
		if !st.evictOldestLocked() {
			break
		}
		evicted++
	}
	st.sessions[id] = st.lru.PushFront(sess)
	st.mu.Unlock()
	if evicted > 0 {
		st.metrics.Add("diagnosed_sessions_evicted_total", int64(evicted))
	}
	st.metrics.Add("diagnosed_sessions_created_total", 1)
	return sess, nil
}

// Get looks a session up and marks it most-recently-used.
func (st *Store) Get(id string, now time.Time) (*Session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.sessions[id]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(el)
	sess := el.Value.(*Session)
	sess.Touch(now)
	return sess, true
}

// Delete removes a session, releasing its reserved budget.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	el, ok := st.sessions[id]
	if ok {
		st.removeLocked(el)
	}
	st.mu.Unlock()
	if ok {
		st.metrics.Add("diagnosed_sessions_deleted_total", 1)
	}
	return ok
}

// Sweep expires sessions idle past the TTL; returns how many it evicted.
func (st *Store) Sweep(now time.Time) int {
	cutoff := now.Add(-st.cfg.TTL)
	st.mu.Lock()
	var expired []*list.Element
	for el := st.lru.Back(); el != nil; el = el.Prev() {
		if el.Value.(*Session).LastUsed().After(cutoff) {
			break // LRU order: everything nearer the front is younger
		}
		expired = append(expired, el)
	}
	for _, el := range expired {
		st.removeLocked(el)
	}
	st.mu.Unlock()
	if n := len(expired); n > 0 {
		st.metrics.Add("diagnosed_sessions_expired_total", int64(n))
		return n
	}
	return 0
}

// Clear closes every session (shutdown).
func (st *Store) Clear() {
	st.mu.Lock()
	for st.lru.Len() > 0 {
		st.removeLocked(st.lru.Back())
	}
	st.mu.Unlock()
}

// evictOldestLocked drops the LRU session, reporting whether one existed.
// It must not touch metrics: the registered gauges acquire st.mu from
// inside Metrics.WriteText, so calling metrics.Add while holding st.mu
// would order the two mutexes both ways and deadlock a concurrent
// /metrics scrape. Callers count evictions and Add after unlocking.
func (st *Store) evictOldestLocked() bool {
	el := st.lru.Back()
	if el == nil {
		return false
	}
	st.removeLocked(el)
	return true
}

func (st *Store) removeLocked(el *list.Element) {
	sess := el.Value.(*Session)
	delete(st.sessions, sess.ID)
	st.lru.Remove(el)
	st.reserved -= sess.Facts
	sess.Close()
	if st.persist != nil {
		// forget only enqueues on the persister's own mutex — no file IO,
		// no metrics, so holding st.mu here cannot deadlock.
		st.persist.forget(sess.ID)
	}
}

// Adopt inserts a restored session under its original ID, reserving its
// fact budget. Unlike Create it never evicts: a boot-time restore that
// does not fit the configured table is refused, not traded against
// other restored sessions.
func (st *Store) Adopt(sess *Session) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.sessions[sess.ID]; dup {
		return fmt.Errorf("session %s already live", sess.ID)
	}
	if len(st.sessions) >= st.cfg.MaxSessions {
		return fmt.Errorf("%w: session table full (%d)", ErrOverloaded, st.cfg.MaxSessions)
	}
	if st.reserved+sess.Facts > st.cfg.GlobalFacts {
		return fmt.Errorf("%w: global fact budget exhausted (%d reserved of %d)",
			ErrOverloaded, st.reserved, st.cfg.GlobalFacts)
	}
	st.reserved += sess.Facts
	sess.wal = st.wal // pre-publication: no lock on the session needed
	st.sessions[sess.ID] = st.lru.PushFront(sess)
	return nil
}

// Sessions returns the live sessions (drain iterates them to persist).
func (st *Store) Sessions() []*Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Session, 0, st.lru.Len())
	for el := st.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Session))
	}
	return out
}
