package serve

import (
	"fmt"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/repl"
)

// startReplPair wires a primary server and a read-only follower server
// through internal/repl over loopback, returning both plus the
// follower handle (for Stop/promote).
func startReplPair(t *testing.T) (ps, fs *Server, pts, fts string, fol *repl.Follower) {
	t.Helper()
	pServer, pHTTP := newTestServer(t, Config{DataDir: t.TempDir()})
	prim := repl.NewPrimary(pServer.WALLog(), pServer.ReplSource(),
		repl.PrimaryOptions{Heartbeat: 50 * time.Millisecond, Metrics: pServer.Metrics()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(ln) //nolint:errcheck
	t.Cleanup(prim.Close)

	fServer, fHTTP := newTestServer(t, Config{DataDir: t.TempDir(), ReadOnly: true})
	f := repl.NewFollower(ln.Addr().String(), fServer.ReplApplier(),
		repl.FollowerOptions{Heartbeat: 50 * time.Millisecond, Metrics: fServer.Metrics()})
	f.Start()
	t.Cleanup(f.Stop)
	return pServer, fServer, pHTTP.URL, fHTTP.URL, f
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationEndToEnd drives a primary over HTTP and checks the
// follower converges to an identical session — same alarms, same
// diagnoses — while refusing mutations until promoted.
func TestReplicationEndToEnd(t *testing.T) {
	pServer, fServer, pURL, fURL, _ := startReplPair(t)

	// Create and stream a session through the paper's running example.
	var created createResponse
	if code := doJSON(t, http.MethodPost, pURL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for _, a := range quickstartAlarms {
		var ar appendResponse
		if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/alarms", pURL, created.ID),
			appendRequest{Alarms: a}, &ar); code != http.StatusOK {
			t.Fatalf("append %q: status %d", a, code)
		}
	}

	// The follower's table converges to the same session state.
	waitUntil(t, "follower catches up", func() bool {
		sess, ok := fServer.Store().Get(created.ID, time.Now())
		return ok && sess.Alarms() == len(quickstartAlarms)
	})
	var pSess, fSess sessionResponse
	if code := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/sessions/%s", pURL, created.ID), nil, &pSess); code != http.StatusOK {
		t.Fatalf("primary GET: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/sessions/%s", fURL, created.ID), nil, &fSess); code != http.StatusOK {
		t.Fatalf("follower GET: status %d", code)
	}
	if fSess.Seq != pSess.Seq {
		t.Fatalf("follower seq %q, primary %q", fSess.Seq, pSess.Seq)
	}
	if !reflect.DeepEqual(fSess.Report.Diagnoses, pSess.Report.Diagnoses) {
		t.Fatalf("follower diagnoses %v, primary %v", fSess.Report.Diagnoses, pSess.Report.Diagnoses)
	}

	// Mutations on the follower are refused while it follows.
	if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/alarms", fURL, created.ID),
		appendRequest{Alarms: "b@p1"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("follower append: status %d, want 503", code)
	}
	if code := doJSON(t, http.MethodPost, fURL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("follower create: status %d, want 503", code)
	}

	// A delete replicates too.
	var second createResponse
	if code := doJSON(t, http.MethodPost, pURL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, &second); code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	waitUntil(t, "second session replicates", func() bool {
		_, ok := fServer.Store().Get(second.ID, time.Now())
		return ok
	})
	if code := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%s", pURL, second.ID), nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	waitUntil(t, "delete replicates", func() bool {
		_, ok := fServer.Store().Get(second.ID, time.Now())
		return !ok
	})
	_ = pServer
}

// TestPromoteOpensWrites checks the promote endpoint: 200 exactly once
// (running the hook first), then the follower serves writes; a second
// promote conflicts; a primary never accepts one.
func TestPromoteOpensWrites(t *testing.T) {
	_, fServer, pURL, fURL, fol := startReplPair(t)

	var created createResponse
	if code := doJSON(t, http.MethodPost, pURL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for _, a := range quickstartAlarms[:2] {
		if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/alarms", pURL, created.ID),
			appendRequest{Alarms: a}, nil); code != http.StatusOK {
			t.Fatalf("append: status %d", code)
		}
	}
	waitUntil(t, "follower catches up", func() bool {
		sess, ok := fServer.Store().Get(created.ID, time.Now())
		return ok && sess.Alarms() == 2
	})

	hookRan := false
	fServer.SetPromote(func() (uint64, error) {
		hookRan = true
		fol.Stop() // drain the stream before going writable
		return fol.Epoch() + 1, nil
	})
	var pr promoteResponse
	if code := doJSON(t, http.MethodPost, fURL+"/v1/admin/promote", nil, &pr); code != http.StatusOK {
		t.Fatalf("promote: status %d", code)
	}
	if !hookRan {
		t.Fatal("promote hook never ran")
	}
	if pr.Epoch != 2 {
		t.Fatalf("promote epoch %d, want 2", pr.Epoch)
	}
	if fServer.ReadOnly() {
		t.Fatal("still read-only after promote")
	}

	// The promoted server accepts the remaining append and answers with
	// a well-formed diagnosis over the full sequence.
	var ar appendResponse
	if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/alarms", fURL, created.ID),
		appendRequest{Alarms: quickstartAlarms[2]}, &ar); code != http.StatusOK {
		t.Fatalf("post-promote append: status %d", code)
	}
	if ar.Alarms != len(quickstartAlarms) {
		t.Fatalf("post-promote alarms = %d, want %d", ar.Alarms, len(quickstartAlarms))
	}

	// Promote is not idempotent: a writable server conflicts.
	if code := doJSON(t, http.MethodPost, fURL+"/v1/admin/promote", nil, nil); code != http.StatusConflict {
		t.Fatalf("second promote: status %d, want 409", code)
	}
	if code := doJSON(t, http.MethodPost, pURL+"/v1/admin/promote", nil, nil); code != http.StatusConflict {
		t.Fatalf("promote on primary: status %d, want 409", code)
	}
}

// TestFollowerResyncFromLaggedState checks the server-level resync: a
// follower that connects only after the primary built state (and the
// log was compacted by snapshots) adopts the shipped dump.
func TestFollowerResyncFromLaggedState(t *testing.T) {
	pServer, pHTTP := newTestServer(t, Config{DataDir: t.TempDir()})
	var created createResponse
	if code := doJSON(t, http.MethodPost, pHTTP.URL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for _, a := range quickstartAlarms {
		if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/alarms", pHTTP.URL, created.ID),
			appendRequest{Alarms: a}, nil); code != http.StatusOK {
			t.Fatalf("append: status %d", code)
		}
	}

	prim := repl.NewPrimary(pServer.WALLog(), pServer.ReplSource(),
		repl.PrimaryOptions{Heartbeat: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(ln) //nolint:errcheck
	t.Cleanup(prim.Close)

	fServer, _ := newTestServer(t, Config{DataDir: t.TempDir(), ReadOnly: true})
	f := repl.NewFollower(ln.Addr().String(), fServer.ReplApplier(),
		repl.FollowerOptions{Heartbeat: 50 * time.Millisecond})
	f.Start()
	t.Cleanup(f.Stop)

	waitUntil(t, "late follower adopts the dump", func() bool {
		sess, ok := fServer.Store().Get(created.ID, time.Now())
		return ok && sess.Alarms() == len(quickstartAlarms)
	})
}
