package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/dist"
	"repro/internal/parser"
	"repro/internal/petri"
)

// quickstart is the paper's running example: the Figure 1 net and the
// Section 2 alarm sequence, split one alarm per append.
var quickstartAlarms = []string{"b@p1", "a@p2", "c@p1"}

func exampleNetText(t *testing.T) string {
	t.Helper()
	return parser.FormatNet(petri.Example())
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = -1 // tests drive Sweep directly
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// doJSON posts (or gets) JSON and decodes the response into out (if
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode < 300 {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, ts *httptest.Server, req createRequest) createResponse {
	t.Helper()
	var resp createResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", req, &resp); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if resp.ID == "" {
		t.Fatal("create: empty session id")
	}
	return resp
}

// metricValue scrapes one plain counter/gauge from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

// TestSessionLifecycle drives the full API surface: create a dQSQ session
// on the Figure 1 net, stream the quickstart alarms one at a time, check
// the final diagnosis set against batch ground truth, inspect, delete.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	if sess.Engine != "dqsq" {
		t.Fatalf("default engine = %q", sess.Engine)
	}
	if len(sess.Peers) == 0 {
		t.Fatal("no peers reported")
	}

	var last appendResponse
	for i, a := range quickstartAlarms {
		code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/alarms",
			appendRequest{Alarms: a}, &last)
		if code != http.StatusOK {
			t.Fatalf("append %d: status %d", i, code)
		}
		if last.Alarms != i+1 {
			t.Fatalf("append %d: alarms = %d", i, last.Alarms)
		}
		if last.Report == nil || last.Report.Truncated {
			t.Fatalf("append %d: bad report %+v", i, last.Report)
		}
	}

	seq, err := core.ParseAlarms(strings.Join(quickstartAlarms, " "))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Example().Diagnose(seq, core.Direct, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := diagnoses(last.Report)
	if !got.Equal(want.Diagnoses) {
		t.Fatalf("streamed diagnoses %v != batch %v", got.Keys(), want.Diagnoses.Keys())
	}

	var info sessionResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if info.Alarms != 3 || info.Seq != strings.Join(quickstartAlarms, " ") {
		t.Fatalf("get: %+v", info)
	}
	if info.Report == nil || !diagnoses(info.Report).Equal(want.Diagnoses) {
		t.Fatalf("get: stale report")
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
}

// TestAPIIncrementality is the tentpole acceptance test: appending the
// quickstart alarms one at a time through the API yields the batch
// diagnosis set, and the dQSQ session's total materialized facts — read
// back from the exported metrics — stay within 2x of a one-shot run.
func TestAPIIncrementality(t *testing.T) {
	seq, err := core.ParseAlarms(strings.Join(quickstartAlarms, " "))
	if err != nil {
		t.Fatal(err)
	}
	oneshot, err := core.Example().Diagnose(seq, core.DQSQ, core.Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{EvalTimeout: time.Minute})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	var last appendResponse
	for _, a := range quickstartAlarms {
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/alarms",
			appendRequest{Alarms: a}, &last); code != http.StatusOK {
			t.Fatalf("append %s: status %d", a, code)
		}
	}

	want, err := core.Example().Diagnose(seq, core.Direct, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !diagnoses(last.Report).Equal(want.Diagnoses) {
		t.Fatalf("streamed %v != batch %v", last.Report.Diagnoses, want.Diagnoses)
	}

	total := metricValue(t, ts, "diagnosed_facts_materialized_total")
	if total <= 0 {
		t.Fatal("no facts counted")
	}
	if total > int64(2*oneshot.Derived) {
		t.Fatalf("streamed materialization %d > 2x one-shot %d", total, oneshot.Derived)
	}
	t.Logf("streamed facts %d vs one-shot %d", total, oneshot.Derived)

	// Report.Messages is cumulative over a dQSQ session, so the counter —
	// which adds one delta per append — must equal the final cumulative
	// figure, not the sum of the per-append cumulative figures.
	if got := metricValue(t, ts, "diagnosed_messages_total"); got != int64(last.Report.Messages) {
		t.Fatalf("diagnosed_messages_total = %d, want final cumulative %d", got, last.Report.Messages)
	}
}

// TestTimeoutPoisonsDQSQSession: a timed-out append leaves the warm dQSQ
// state ambiguous (the queued alarm facts may be partially injected), so
// the session must refuse later appends with ErrExhausted instead of
// serving reports that silently omit the lost alarms.
func TestTimeoutPoisonsDQSQSession(t *testing.T) {
	sess, err := newSession("s1", core.Example(), core.DQSQ, 0, time.Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	obs, err := core.ParseAlarms("b@p1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(obs, time.Nanosecond); err == nil {
		// The evaluation would have to quiesce before a 1ns timer fires.
		t.Skip("append beat the 1ns timeout")
	} else if !timeoutErr(err) {
		t.Fatalf("append with 1ns timeout: %v, want timeout", err)
	}
	if _, err := sess.Append(obs, time.Minute); !errors.Is(err, ErrExhausted) {
		t.Fatalf("append after timeout: %v, want ErrExhausted", err)
	}
	st, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exhausted {
		t.Fatal("timed-out session not marked exhausted")
	}
	if len(st.Seq) != 0 {
		t.Fatalf("timed-out append committed its alarms: %v", st.Seq)
	}
}

// diagnoses lifts a wire report's diagnosis set back into the library
// type for set comparison.
func diagnoses(rep *reportJSON) diagnosis.Diagnoses { return diagnosis.Diagnoses(rep.Diagnoses) }

// TestErrorPaths covers the 400/404 mappings.
func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/sessions"

	for name, body := range map[string]any{
		"bad json":       "{",
		"missing net":    createRequest{},
		"unknown engine": createRequest{Net: exampleNetText(t), Engine: "magic"},
		"bad net":        createRequest{Net: "nonsense net text"},
	} {
		var code int
		if s, ok := body.(string); ok {
			resp, err := http.Post(url, "application/json", strings.NewReader(s))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			code = resp.StatusCode
		} else {
			code = doJSON(t, "POST", url, body, nil)
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}

	if code := doJSON(t, "POST", url+"/nope/alarms", appendRequest{Alarms: "b@p1"}, nil); code != http.StatusNotFound {
		t.Errorf("append to unknown session: status %d", code)
	}
	if code := doJSON(t, "DELETE", url+"/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete unknown session: status %d", code)
	}

	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	if code := doJSON(t, "POST", url+"/"+sess.ID+"/alarms", appendRequest{Alarms: "zz@@"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad alarm text: status %d", code)
	}
	if code := doJSON(t, "POST", url+"/"+sess.ID+"/alarms", appendRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty alarms: status %d", code)
	}
	if code := doJSON(t, "POST", url+"/"+sess.ID+"/alarms", appendRequest{Alarms: "b@ghost"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown peer: status %d", code)
	}
}

// TestSessionBudget429: a session created with a tiny fact budget is
// load-shed with 429 and stays poisoned.
func TestSessionBudget429(t *testing.T) {
	_, ts := newTestServer(t, Config{EvalTimeout: time.Minute})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "dqsq", MaxFacts: 10})
	url := ts.URL + "/v1/sessions/" + sess.ID
	if code := doJSON(t, "POST", url+"/alarms", appendRequest{Alarms: "b@p1"}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("append over budget: status %d, want 429", code)
	}
	if code := doJSON(t, "POST", url+"/alarms", appendRequest{Alarms: "a@p2"}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("append after exhaustion: status %d, want 429", code)
	}
	var info sessionResponse
	if code := doJSON(t, "GET", url, nil, &info); code != http.StatusOK || !info.Exhausted {
		t.Fatalf("exhausted session: status %d, info %+v", code, info)
	}
}

// TestGlobalBudget503: creates past the global reserved-fact budget are
// load-shed with 503 until capacity frees up.
func TestGlobalBudget503(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: StoreConfig{GlobalFacts: 1000, SessionFacts: 600}})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Net: exampleNetText(t), Engine: "direct"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create past global budget: status %d, want 503", code)
	}
	if got := metricValue(t, ts, "diagnosed_sessions_shed_total"); got != 1 {
		t.Fatalf("shed counter = %d", got)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
}

// TestLRUEviction: the table cap evicts the least-recently-used session.
func TestLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: StoreConfig{MaxSessions: 2}})
	a := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	b := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	// Touch a so b is the LRU victim.
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+a.ID, nil, nil); code != http.StatusOK {
		t.Fatal("get a")
	}
	c := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+b.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("b should be evicted, got %d", code)
	}
	for _, id := range []string{a.ID, c.ID} {
		if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
			t.Fatalf("%s should survive", id)
		}
	}
	if got := metricValue(t, ts, "diagnosed_sessions_evicted_total"); got != 1 {
		t.Fatalf("evicted counter = %d", got)
	}
}

// TestTTLSweep: idle sessions expire on sweep.
func TestTTLSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{Store: StoreConfig{TTL: time.Minute}})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	if n := s.Store().Sweep(time.Now()); n != 0 {
		t.Fatalf("fresh session swept (%d)", n)
	}
	if n := s.Store().Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("expired session still served: %d", code)
	}
	if got := metricValue(t, ts, "diagnosed_sessions_expired_total"); got != 1 {
		t.Fatalf("expired counter = %d", got)
	}
}

// TestShutdownDrains: after Shutdown the server refuses work with 503,
// /healthz reports the drain, /metrics stays readable, and every session
// is closed.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil { // idempotent
		t.Fatal(err)
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/sessions",
		createRequest{Net: exampleNetText(t)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d", code)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics while draining: %d", resp.StatusCode)
	}
	if n := s.Store().Len(); n != 0 {
		t.Fatalf("%d sessions survive shutdown", n)
	}
}

// TestTimeoutMapsTo504 checks the error mapping for evaluation timeouts.
func TestTimeoutMapsTo504(t *testing.T) {
	s := NewServer(Config{SweepEvery: -1})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	rec := httptest.NewRecorder()
	s.fail(rec, fmt.Errorf("eval: %w", dist.ErrTimeout))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d, want 504", rec.Code)
	}
}

// TestMetricsFormat: histograms render with cumulative buckets.
func TestMetricsFormat(t *testing.T) {
	m := NewMetrics()
	m.Observe("x_seconds", 2*time.Millisecond)
	m.Observe("x_seconds", 40*time.Second)
	var buf bytes.Buffer
	m.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.005"} 1`,
		`x_seconds_bucket{le="+Inf"} 2`,
		"x_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
