package serve

// Write-ahead logging for the session server: the zero-loss half of the
// durability story. The write-behind persister (persist.go) coalesces
// appends into whole-session snapshots, which bounds recovery time but
// loses every append since the last flush on kill -9. With a WAL, every
// intent that gets an HTTP acknowledgement — session create, alarm
// append, session delete — is logged (and, under fsync=always, fsynced)
// first. Boot replays the log on top of the restored snapshots: because
// the online dQSQ evaluation is deterministic per append, the replayed
// sessions are byte-identical to uninterrupted ones.
//
// Compaction: each session snapshot records the WAL sequence it covers
// (Session.walSeq). The coordinator tracks, per session, the lowest
// logged sequence NOT yet covered by an on-disk snapshot, plus delete
// records awaiting their file removal; everything below the minimum is
// safe to drop, and the log is truncated whenever the persister lands a
// snapshot or applies a removal.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// WAL record kinds. The payloads are encoded with the snapshot
// primitives (snapshot.Writer / snapshot.NewReader).
const (
	walKindCreate = 1 // id, net text, engine, fact budget, created ns
	walKindAppend = 2 // id, alarms text
	walKindDelete = 3 // id
)

// walDirName is the log's directory inside Config.DataDir.
const walDirName = "wal"

// serverWAL couples the log with the coverage bookkeeping compaction
// needs. All mutations of the maps happen under mu, and records are
// appended under the same mu so a concurrent compaction can never
// truncate a record whose coverage entry is not registered yet.
type serverWAL struct {
	log *wal.Log

	mu         sync.Mutex
	pending    map[string]uint64 // lowest logged seq not covered by the session's snapshot
	lastLogged map[string]uint64 // highest logged seq per session
	deletes    map[string]uint64 // delete-record seq awaiting the snapshot file's removal
}

func newServerWAL(log *wal.Log) *serverWAL {
	return &serverWAL{
		log:        log,
		pending:    make(map[string]uint64),
		lastLogged: make(map[string]uint64),
		deletes:    make(map[string]uint64),
	}
}

// logRecord appends one record and registers it as uncovered.
func (w *serverWAL) logRecord(id string, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq, err := w.log.Append(payload)
	if err != nil {
		return 0, err
	}
	if _, ok := w.pending[id]; !ok {
		w.pending[id] = seq
	}
	w.lastLogged[id] = seq
	return seq, nil
}

// logCreate logs a session-create intent.
func (w *serverWAL) logCreate(id, netText, engine string, facts int, createdNS int64) (uint64, error) {
	sw := &snapshot.Writer{}
	sw.Byte(walKindCreate)
	sw.String(id)
	sw.String(netText)
	sw.String(engine)
	sw.Uvarint(uint64(facts))
	sw.Int(createdNS)
	return w.logRecord(id, sw.Body())
}

// logAppend logs one acknowledged alarm append.
func (w *serverWAL) logAppend(id, alarms string) (uint64, error) {
	sw := &snapshot.Writer{}
	sw.Byte(walKindAppend)
	sw.String(id)
	sw.String(alarms)
	return w.logRecord(id, sw.Body())
}

// logDelete logs a session-delete intent. The record must outlive the
// session's append records: it is what keeps a stale snapshot file from
// resurrecting the session if the crash lands between the HTTP 204 and
// the file's removal.
func (w *serverWAL) logDelete(id string) (uint64, error) {
	sw := &snapshot.Writer{}
	sw.Byte(walKindDelete)
	sw.String(id)
	w.mu.Lock()
	defer w.mu.Unlock()
	seq, err := w.log.Append(sw.Body())
	if err != nil {
		return 0, err
	}
	w.deletes[id] = seq
	delete(w.pending, id)
	delete(w.lastLogged, id)
	return seq, nil
}

// covered records that a snapshot covering WAL records up to seq landed
// on disk for the session, advancing the compaction floor.
func (w *serverWAL) covered(id string, seq uint64) {
	w.mu.Lock()
	if p, ok := w.pending[id]; ok && p <= seq {
		if w.lastLogged[id] <= seq {
			delete(w.pending, id)
		} else {
			// Records after seq exist; seq+1 is a safe (conservative)
			// lower bound for the first uncovered one.
			w.pending[id] = seq + 1
		}
	}
	w.mu.Unlock()
}

// removeApplied records that the session's snapshot file is gone
// (delete or eviction): nothing on disk can resurrect it, so all its
// records — including a pending delete intent — are compactable.
func (w *serverWAL) removeApplied(id string) {
	w.mu.Lock()
	delete(w.deletes, id)
	delete(w.pending, id)
	delete(w.lastLogged, id)
	w.mu.Unlock()
}

// compact truncates the log below the lowest uncovered record.
func (w *serverWAL) compact() {
	w.mu.Lock()
	defer w.mu.Unlock()
	safe := w.log.LastSeq()
	for _, p := range w.pending {
		if p-1 < safe {
			safe = p - 1
		}
	}
	for _, d := range w.deletes {
		if d-1 < safe {
			safe = d - 1
		}
	}
	if safe > 0 {
		w.log.Truncate(safe) //nolint:errcheck // compaction is advisory; next flush retries
	}
}

// close flushes and closes the log.
func (w *serverWAL) close() {
	w.log.Close() //nolint:errcheck // shutdown path; drain already persisted state
}

// seedPending registers a replayed record as uncovered (boot-time
// bookkeeping: the record predates this process, so logRecord never saw
// it).
func (w *serverWAL) seedPending(id string, seq uint64) {
	w.mu.Lock()
	if _, ok := w.pending[id]; !ok {
		w.pending[id] = seq
	}
	w.lastLogged[id] = seq
	w.mu.Unlock()
}

// applyWALRecord applies one log record to the live table: the single
// apply path shared by boot replay and the replication follower, so a
// follower's state after applying a sequence is exactly what a primary
// recovering through the same records would hold. It returns the
// session the record touched (nil if none) and, for delete records,
// the deleted session id. A record that no longer applies (unknown
// session, decode error) is logged and skipped — neither recovery nor
// a replication stream may take the server down.
func (s *Server) applyWALRecord(seq uint64, payload []byte) (touched *Session, deleted string) {
	w := s.wal
	r := snapshot.NewReader(payload)
	switch kind := r.Byte(); kind {
	case walKindCreate:
		id := r.String()
		netText := r.String()
		engineName := r.String()
		facts := int(r.Uvarint())
		createdNS := r.Int()
		if err := r.Finish(); err != nil {
			s.log.Warn("wal: bad create record", "seq", seq, "err", err)
			return nil, ""
		}
		if _, live := s.store.Get(id, time.Now()); live {
			return nil, "" // the snapshot already covers the create
		}
		engine, err := ParseEngine(engineName)
		if err != nil {
			s.log.Warn("wal: create not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		sys, err := core.LoadNet(netText)
		if err != nil {
			s.log.Warn("wal: create not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		sess, err := newSession(id, sys, engine, facts, time.Unix(0, createdNS), s.metrics)
		if err != nil {
			s.log.Warn("wal: create not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		sess.walSeq = seq
		if err := s.store.Adopt(sess); err != nil {
			s.log.Warn("wal: create not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		w.seedPending(id, seq)
		s.log.Info("wal: session recreated", "session", id, "seq", seq)
		return sess, ""
	case walKindAppend:
		id := r.String()
		alarms := r.String()
		if err := r.Finish(); err != nil {
			s.log.Warn("wal: bad append record", "seq", seq, "err", err)
			return nil, ""
		}
		sess, live := s.store.Get(id, time.Now())
		if !live {
			return nil, "" // deleted later in the log, or its create was refused
		}
		if seq <= sess.WALSeq() {
			return nil, "" // the snapshot already covers this append
		}
		obs, err := core.ParseAlarms(alarms)
		if err != nil {
			s.log.Warn("wal: append not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		if _, err := sess.replayAppend(obs, s.cfg.EvalTimeout, seq); err != nil {
			s.log.Warn("wal: append not replayed", "seq", seq, "session", id, "err", err)
			return nil, ""
		}
		w.seedPending(id, seq)
		return sess, ""
	case walKindDelete:
		id := r.String()
		if err := r.Finish(); err != nil {
			s.log.Warn("wal: bad delete record", "seq", seq, "err", err)
			return nil, ""
		}
		w.mu.Lock()
		w.deletes[id] = seq
		delete(w.pending, id)
		delete(w.lastLogged, id)
		w.mu.Unlock()
		// Delete via the store when live; always enqueue the file
		// removal — a snapshot may exist even when Adopt was refused.
		s.store.Delete(id)
		s.persist.forget(id)
		s.log.Info("wal: session deleted on replay", "session", id, "seq", seq)
		return nil, id
	default:
		s.log.Warn("wal: unknown record kind", "seq", seq, "kind", kind)
		return nil, ""
	}
}

// reset wipes the coverage bookkeeping — a replication resync replaces
// the whole table, and the repositioned log carries no records yet.
func (w *serverWAL) reset() {
	w.mu.Lock()
	w.pending = make(map[string]uint64)
	w.lastLogged = make(map[string]uint64)
	w.deletes = make(map[string]uint64)
	w.mu.Unlock()
}

// replayWAL applies the log on top of the snapshot-restored session
// table: creates sessions whose snapshots never landed, re-appends
// acknowledged alarms past each session's snapshot coverage, and
// re-applies delete intents. Any session the replay touched is marked
// dirty so a fresh snapshot lands and the log can compact.
func (s *Server) replayWAL() {
	touched := make(map[string]*Session)
	err := s.wal.log.Replay(1, func(seq uint64, payload []byte) error {
		sess, deleted := s.applyWALRecord(seq, payload)
		if sess != nil {
			touched[sess.ID] = sess
		}
		if deleted != "" {
			delete(touched, deleted)
		}
		return nil
	})
	if err != nil {
		s.log.Error("wal: replay stopped early", "err", err)
	}
	replayed := 0
	for _, sess := range touched {
		s.persist.markDirty(sess)
		replayed++
	}
	if replayed > 0 {
		s.log.Info("wal: replay complete", "sessions", replayed)
	}
}

// walAppendError wraps a WAL write failure on the append path.
func walAppendError(err error) error {
	return fmt.Errorf("serve: append evaluated but not durably logged: %w", err)
}
