package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/pool"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config tunes the server.
type Config struct {
	// Store bounds the session table.
	Store StoreConfig
	// EvalTimeout caps each evaluation; a shorter request-context deadline
	// wins. 0 means 30s.
	EvalTimeout time.Duration
	// SweepEvery is the TTL sweep period. 0 means 30s; negative disables
	// the background sweeper (tests drive Sweep directly).
	SweepEvery time.Duration
	// MaxBody caps request bodies. 0 means 1MiB.
	MaxBody int64
	// DataDir enables write-behind session durability: every append
	// schedules a snapshot of the session to <DataDir>/<id>.dsnp, graceful
	// shutdown persists every live session, and a restarted server
	// restores the files back into its table. It also enables the
	// write-ahead log at <DataDir>/wal: every create, append and delete is
	// logged before its HTTP acknowledgement, and boot replays the log on
	// top of the restored snapshots — with Fsync always, a kill -9 loses
	// nothing that was acknowledged. Empty disables persistence.
	DataDir string
	// Fsync is the WAL durability policy (wal.SyncAlways, the zero value,
	// fsyncs every record before acknowledging; SyncInterval batches;
	// SyncNever leaves flushing to the OS).
	Fsync wal.Policy
	// SnapshotDelay stalls each write-behind snapshot (test hook: it
	// widens the window in which acknowledged appends exist only in the
	// WAL, so crash tests can target it deterministically). 0 in
	// production.
	SnapshotDelay time.Duration
	// ReadOnly starts the server as a replication follower: create,
	// append and delete refuse with 503 ErrReadOnly until a promote
	// (POST /v1/admin/promote) flips the server writable. Reads, health
	// and metrics always work.
	ReadOnly bool
	// Logger receives persistence and drain-disposition logs; nil
	// discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.EvalTimeout == 0 {
		c.EvalTimeout = 30 * time.Second
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = 30 * time.Second
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// Server is the streaming diagnosis service: session CRUD, incremental
// alarm appends, health and metrics, with graceful shutdown draining
// in-flight evaluations.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux
	log     *slog.Logger
	persist *persister // nil when Config.DataDir is empty
	wal     *serverWAL // nil when Config.DataDir is empty or the log failed to open

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
	finalize sync.Once // persist-and-clear runs exactly once across concurrent Shutdowns

	// pool, when non-nil, turns the server into a frontend: session
	// operations are dispatched to remote peerd workers instead of the
	// local store. Set before serving (SetPool); never changed after.
	pool *pool.Pool

	// readOnly gates the mutating handlers while the server follows a
	// replication primary; promote flips it off exactly once.
	readOnly  atomic.Bool
	promoteMu sync.Mutex
	promoteFn func() (epoch uint64, err error)

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewServer builds the service, restores any persisted sessions from
// Config.DataDir, and starts its TTL sweeper (unless disabled). Callers
// must Shutdown it to stop the sweeper and persist the session table.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	RegisterRuntimeGauges(m)
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:       cfg,
		store:     NewStore(cfg.Store, m),
		metrics:   m,
		mux:       http.NewServeMux(),
		log:       log,
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	s.readOnly.Store(cfg.ReadOnly)
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			// Serving sessions beats refusing to start; the server just
			// runs non-durable, loudly.
			log.Error("data dir unusable; persistence disabled", "dir", cfg.DataDir, "err", err)
		} else {
			// Recovery order: snapshots first (the coarse base state), then
			// the WAL replayed on top of them — it holds exactly the
			// acknowledged work the snapshots had not absorbed yet.
			restoreSessions(cfg.DataDir, s.store, m, log)
			walLog, err := wal.Open(filepath.Join(cfg.DataDir, walDirName), wal.Options{
				Fsync:   cfg.Fsync,
				Metrics: m,
			})
			if err != nil {
				log.Error("wal unusable; write-ahead logging disabled", "err", err)
			} else {
				s.wal = newServerWAL(walLog)
			}
			s.persist = newPersister(cfg.DataDir, m, log, s.wal, cfg.SnapshotDelay)
			s.store.SetPersister(s.persist)
			s.store.SetWAL(s.wal)
			if s.wal != nil {
				s.replayWAL()
			}
		}
	}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/alarms", s.handleAppend)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/admin/promote", s.handlePromote)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	if cfg.SweepEvery > 0 {
		go s.sweeper()
	} else {
		close(s.sweepDone)
	}
	return s
}

// Metrics exposes the registry (cmd/diagnosed adds process gauges).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetPool switches the server into frontend mode: session creates,
// appends, reads and deletes are scheduled onto the pool's workers
// instead of the local store. Must be called before serving requests.
func (s *Server) SetPool(p *pool.Pool) { s.pool = p }

// Store exposes the session table (tests drive Sweep directly).
func (s *Server) Store() *Store { return s.store }

func (s *Server) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-t.C:
			s.store.Sweep(now)
		}
	}
}

// ServeHTTP implements http.Handler. Every request except health and
// metrics counts as in-flight work for graceful shutdown; once draining,
// new work is load-shed with 503 while /healthz reports the drain and
// /metrics stays readable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		s.mux.ServeHTTP(w, r)
		return
	}
	if !s.enter() {
		// The drain is short-lived: the client should retry against the
		// restarted (or replacement) instance, not give up.
		w.Header().Set("Retry-After", "1")
		s.fail(w, ErrDraining)
		return
	}
	defer s.inflight.Done()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	s.mux.ServeHTTP(w, r)
}

// enter registers an in-flight request, refusing once draining. The
// mutex closes the Add/Wait race: Shutdown flips draining under the same
// lock before waiting.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown drains the server: new requests are refused with 503, the TTL
// sweeper stops, in-flight evaluations run to completion (or until ctx
// expires), then every session is closed. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		close(s.sweepStop)
	}
	<-s.sweepDone

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.finalize.Do(func() {
		if s.persist != nil {
			// In-flight appends are done; persist the final state of every
			// live session synchronously, then detach the persister so
			// Clear does not delete the files just written.
			s.persist.close()
			s.persist.drain(s.store.Sessions())
			s.store.SetPersister(nil)
		}
		if s.wal != nil {
			// Drain covered every live session, so compaction drops what it
			// can before the final flush-and-close.
			s.wal.compact()
			s.wal.close()
		}
		s.store.Clear()
	})
	return nil
}

// evalTimeout derives the evaluation budget for one request: the
// configured cap, shortened by any request-context deadline.
func (s *Server) evalTimeout(r *http.Request) time.Duration {
	d := s.cfg.EvalTimeout
	if deadline, ok := r.Context().Deadline(); ok {
		if rem := time.Until(deadline); rem < d {
			d = rem
		}
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// ---- wire types ----

type createRequest struct {
	// Net is the textual net format (parser.Net); required.
	Net string `json:"net"`
	// Engine is direct | product | naive | dqsq (default dqsq).
	Engine string `json:"engine"`
	// MaxFacts is the session's fact budget; 0 takes the server default.
	MaxFacts int `json:"max_facts"`
}

type createResponse struct {
	ID       string   `json:"id"`
	Engine   string   `json:"engine"`
	Peers    []string `json:"peers"`
	MaxFacts int      `json:"max_facts"`
}

type appendRequest struct {
	// Alarms is one or many observations in the textual format, e.g.
	// "b@p1 a@p2".
	Alarms string `json:"alarms"`
}

type reportJSON struct {
	Engine     string     `json:"engine"`
	Diagnoses  [][]string `json:"diagnoses"`
	TransFacts int        `json:"trans_facts"`
	PlaceFacts int        `json:"place_facts"`
	Derived    int        `json:"derived"`
	Messages   int        `json:"messages"`
	ElapsedMS  float64    `json:"elapsed_ms"`
	Truncated  bool       `json:"truncated"`
}

func toReportJSON(rep *core.Report) *reportJSON {
	if rep == nil {
		return nil
	}
	diags := rep.Diagnoses
	if diags == nil {
		diags = [][]string{}
	}
	return &reportJSON{
		Engine:     EngineName(rep.Engine),
		Diagnoses:  diags,
		TransFacts: rep.TransFacts,
		PlaceFacts: rep.PlaceFacts,
		Derived:    rep.Derived,
		Messages:   rep.Messages,
		ElapsedMS:  float64(rep.Elapsed.Microseconds()) / 1000,
		Truncated:  rep.Truncated,
	}
}

type appendResponse struct {
	Alarms       int         `json:"alarms"`
	Added        []string    `json:"added"`
	Removed      []string    `json:"removed"`
	DerivedDelta int         `json:"derived_delta"`
	Report       *reportJSON `json:"report"`
}

type sessionResponse struct {
	ID        string      `json:"id"`
	Engine    string      `json:"engine"`
	MaxFacts  int         `json:"max_facts"`
	Created   time.Time   `json:"created"`
	LastUsed  time.Time   `json:"last_used"`
	Alarms    int         `json:"alarms"`
	Exhausted bool        `json:"exhausted"`
	Seq       string      `json:"seq"`
	Report    *reportJSON `json:"report"`
	// SnapshotAgeSeconds is how stale the session's persisted snapshot is
	// (what a kill -9 right now would lose). Absent while the session has
	// never been persisted or persistence is disabled.
	SnapshotAgeSeconds *float64 `json:"snapshot_age_seconds,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.readOnly.Load() {
		s.fail(w, ErrReadOnly)
		return
	}
	start := time.Now()
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Net == "" {
		s.badRequest(w, errors.New("missing net"))
		return
	}
	engine, err := ParseEngine(req.Engine)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if s.pool != nil {
		// Frontend mode: the worker parses the net and warms the engine;
		// the frontend only burns cycles on admission and placement.
		res := s.pool.Create(req.Net, req.Engine, req.MaxFacts, s.evalTimeout(r))
		s.metrics.Observe("diagnosed_create_seconds", time.Since(start))
		s.writePoolResult(w, http.StatusCreated, res)
		return
	}
	sys, err := core.LoadNet(req.Net)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	sess, err := s.store.Create(sys, engine, req.MaxFacts, time.Now())
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.fail(w, err)
		} else {
			// Engine warm-up rejected the net (e.g. a peer name that
			// collides with the supervisor) — the client's fault.
			s.badRequest(w, err)
		}
		return
	}
	if s.wal != nil {
		// Log the create before the 201. The session is technically live in
		// the table already, but its crypto-random ID is unknown to any
		// client until this response goes out, so no append can precede the
		// create record in the log.
		seq, err := s.wal.logCreate(sess.ID, req.Net, EngineName(engine), sess.Facts, sess.Created.UnixNano())
		if err != nil {
			s.store.Delete(sess.ID)
			s.fail(w, fmt.Errorf("session not durably logged: %w", err))
			return
		}
		sess.setWALSeq(seq)
	}
	peers := []string{}
	for _, p := range sys.Peers() {
		peers = append(peers, string(p))
	}
	s.metrics.Observe("diagnosed_create_seconds", time.Since(start))
	s.writeJSON(w, http.StatusCreated, createResponse{
		ID: sess.ID, Engine: EngineName(engine), Peers: peers, MaxFacts: sess.Facts,
	})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.readOnly.Load() {
		s.fail(w, ErrReadOnly)
		return
	}
	if s.pool != nil {
		var req appendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.badRequest(w, fmt.Errorf("bad request body: %w", err))
			return
		}
		start := time.Now()
		res := s.pool.Append(r.PathValue("id"), req.Alarms, s.evalTimeout(r))
		s.metrics.Observe("diagnosed_append_seconds", time.Since(start))
		s.writePoolResult(w, http.StatusOK, res)
		return
	}
	sess, ok := s.store.Get(r.PathValue("id"), time.Now())
	if !ok {
		s.notFound(w)
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	seq, err := core.ParseAlarms(req.Alarms)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if len(seq) == 0 {
		s.badRequest(w, errors.New("no alarms in request"))
		return
	}
	for _, o := range seq {
		if !sess.HasPeer(string(o.Peer)) {
			s.badRequest(w, fmt.Errorf("alarm from unknown peer %q", o.Peer))
			return
		}
	}

	start := time.Now()
	res, err := sess.Append(seq, s.evalTimeout(r))
	s.metrics.Observe("diagnosed_append_seconds", time.Since(start))
	if s.persist != nil {
		// Write-behind on success AND failure: an append that poisoned the
		// session must persist the poisoning, or a restart would resurrect
		// a session whose warm state is not trustworthy as healthy.
		s.persist.markDirty(sess)
	}
	if err != nil {
		s.metrics.Add("diagnosed_append_errors_total", 1)
		s.fail(w, err)
		return
	}
	s.metrics.Add("diagnosed_alarms_total", int64(len(seq)))
	s.metrics.Add("diagnosed_appends_total", 1)
	s.metrics.Add("diagnosed_facts_materialized_total", int64(res.DerivedDelta))
	s.metrics.Add("diagnosed_messages_total", int64(res.MessagesDelta))

	added, removed := res.Added, res.Removed
	if added == nil {
		added = []string{}
	}
	if removed == nil {
		removed = []string{}
	}
	s.writeJSON(w, http.StatusOK, appendResponse{
		Alarms:       res.Alarms,
		Added:        added,
		Removed:      removed,
		DerivedDelta: res.DerivedDelta,
		Report:       toReportJSON(res.Report),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if s.pool != nil {
		// The worker is authoritative for session state (seq, report,
		// exhaustion); the frontend only journals placement.
		s.writePoolResult(w, http.StatusOK, s.pool.Get(r.PathValue("id"), 10*time.Second))
		return
	}
	sess, ok := s.store.Get(r.PathValue("id"), time.Now())
	if !ok {
		s.notFound(w)
		return
	}
	st, err := sess.Snapshot()
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := sessionResponse{
		ID:        st.ID,
		Engine:    EngineName(st.Engine),
		MaxFacts:  st.Facts,
		Created:   st.Created,
		LastUsed:  st.LastUsed,
		Alarms:    st.Alarms,
		Exhausted: st.Exhausted,
		Seq:       parser.FormatAlarms(st.Seq),
		Report:    toReportJSON(st.Report),
	}
	if !st.LastSnap.IsZero() {
		age := time.Since(st.LastSnap).Seconds()
		resp.SnapshotAgeSeconds = &age
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleTrace exports the session's evaluation trace as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.pool != nil {
		// The trace buffer lives with the warm engine on the worker; the
		// frontend has nothing to export. Scrape the worker's admin
		// endpoint instead.
		s.notFound(w)
		return
	}
	sess, ok := s.store.Get(r.PathValue("id"), time.Now())
	if !ok {
		s.notFound(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := sess.WriteTrace(w); err != nil {
		// Headers are gone; nothing to report but the connection state.
		return
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.readOnly.Load() {
		s.fail(w, ErrReadOnly)
		return
	}
	id := r.PathValue("id")
	if s.pool != nil {
		res := s.pool.Delete(id, 10*time.Second)
		if res.Code == wire.SessOK {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.writePoolResult(w, http.StatusNoContent, res)
		return
	}
	if s.wal != nil {
		// Log the delete intent before acknowledging it: the record is what
		// keeps a crash between the 204 and the snapshot file's removal from
		// resurrecting the session on restart. Existence is checked first so
		// the log never carries deletes of sessions that were never there.
		if _, ok := s.store.Get(id, time.Now()); !ok {
			s.notFound(w)
			return
		}
		if _, err := s.wal.logDelete(id); err != nil {
			s.fail(w, fmt.Errorf("delete not durably logged: %w", err))
			return
		}
	}
	if !s.store.Delete(id) {
		s.notFound(w)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// promoteResponse acknowledges a successful promote with the fencing
// epoch the server now serves under.
type promoteResponse struct {
	Epoch uint64 `json:"epoch"`
}

// handlePromote turns a read-only follower into the primary: the
// configured promote hook (cmd/diagnosed: stop the stream, bump and
// persist the fencing epoch, start shipping) runs first, and only then
// do the mutating handlers open. An already-writable server answers
// 409 — promote is not idempotent; the epoch bump fences the old
// primary and must happen exactly once per failover.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.readOnly.Load() {
		s.writeJSON(w, http.StatusConflict, errorResponse{Error: "already primary"})
		return
	}
	var epoch uint64
	if s.promoteFn != nil {
		e, err := s.promoteFn()
		if err != nil {
			s.writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("promote failed: %v", err)})
			return
		}
		epoch = e
	}
	s.readOnly.Store(false)
	s.log.Info("promoted to primary", "epoch", epoch)
	s.writeJSON(w, http.StatusOK, promoteResponse{Epoch: epoch})
}

// SetPromote installs the hook handlePromote runs before the server
// goes writable. It must return the new fencing epoch.
func (s *Server) SetPromote(fn func() (uint64, error)) {
	s.promoteMu.Lock()
	s.promoteFn = fn
	s.promoteMu.Unlock()
}

// ReadOnly reports whether the server is refusing mutations (a
// replication follower awaiting promote).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w)
}

// ---- error mapping ----

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

func (s *Server) notFound(w http.ResponseWriter) {
	s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such session"})
}

// fail maps service errors to statuses: exhausted per-session budget 429,
// overload or drain 503, evaluation timeout 504, vanished session 404.
func (s *Server) fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrExhausted):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining), errors.Is(err, ErrReadOnly):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		status = http.StatusNotFound
	case timeoutErr(err):
		status = http.StatusGatewayTimeout
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writePoolResult renders a pooled operation's outcome: success writes
// the worker-rendered body verbatim (byte-identical to local serving),
// errors map wire codes onto the same statuses fail uses, with
// Retry-After carrying the pool's backpressure hint.
func (s *Server) writePoolResult(w http.ResponseWriter, okStatus int, res pool.Result) {
	if res.Code == wire.SessOK {
		if len(res.Body) == 0 {
			w.WriteHeader(okStatus)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(okStatus)
		w.Write(res.Body) //nolint:errcheck // nothing to do about a dead client
		return
	}
	if res.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((res.RetryAfterMS+999)/1000)))
	}
	status := http.StatusInternalServerError
	switch res.Code {
	case wire.SessExhausted:
		status = http.StatusTooManyRequests
	case wire.SessSaturated, wire.SessDraining, wire.SessRetry:
		status = http.StatusServiceUnavailable
	case wire.SessNotFound:
		status = http.StatusNotFound
	case wire.SessTimeout:
		status = http.StatusGatewayTimeout
	case wire.SessBad:
		status = http.StatusBadRequest
	}
	s.writeJSON(w, status, errorResponse{Error: res.Err})
}
