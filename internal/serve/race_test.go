package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/petri"
)

// TestConcurrentSessions hammers the service with 24 concurrent clients —
// each creating a session, streaming the quickstart alarms, reading it
// back and (half the time) deleting it — while the table cap forces LRU
// evictions and a sweeper goroutine expires idle sessions. It then shuts
// the server down under load. Run with -race; the assertions are loose on
// purpose (evicted sessions legitimately 404 mid-stream): the test's job
// is ordering, not semantics.
func TestConcurrentSessions(t *testing.T) {
	const clients = 24

	s := NewServer(Config{
		Store:       StoreConfig{MaxSessions: 10, TTL: 50 * time.Millisecond},
		EvalTimeout: time.Minute,
		SweepEvery:  -1,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	netText := parser.FormatNet(petri.Example())
	engines := []string{"dqsq", "direct", "naive", "product"}

	stopSweep := make(chan struct{})
	var sweepWG sync.WaitGroup
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stopSweep:
				return
			case <-time.After(5 * time.Millisecond):
				s.Store().Sweep(time.Now())
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var created createResponse
			code := doJSON(t, "POST", ts.URL+"/v1/sessions",
				createRequest{Net: netText, Engine: engines[c%len(engines)]}, &created)
			if code != http.StatusCreated {
				if code != http.StatusServiceUnavailable {
					t.Errorf("client %d: create status %d", c, code)
				}
				return
			}
			url := ts.URL + "/v1/sessions/" + created.ID
			for _, a := range quickstartAlarms {
				var resp appendResponse
				switch code := doJSON(t, "POST", url+"/alarms", appendRequest{Alarms: a}, &resp); code {
				case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable:
					// ok / evicted mid-stream / draining
				default:
					t.Errorf("client %d: append %q status %d", c, a, code)
				}
			}
			if code := doJSON(t, "GET", url, nil, nil); code != http.StatusOK &&
				code != http.StatusNotFound && code != http.StatusServiceUnavailable {
				t.Errorf("client %d: get status %d", c, code)
			}
			if c%2 == 0 {
				if code := doJSON(t, "DELETE", url, nil, nil); code != http.StatusNoContent &&
					code != http.StatusNotFound && code != http.StatusServiceUnavailable {
					t.Errorf("client %d: delete status %d", c, code)
				}
			}
		}(c)
	}

	wg.Wait()
	close(stopSweep)
	sweepWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	if n := s.Store().Len(); n != 0 {
		t.Fatalf("%d sessions survive shutdown", n)
	}
}

// TestMetricsScrapeDuringEviction: scraping /metrics samples gauges that
// acquire the store mutex, while creates that evict used to bump counters
// (acquiring the metrics mutex) from inside the store's locked section —
// a lock-order inversion that deadlocked both paths. This test hammers
// the two concurrently; under the old ordering it hangs.
func TestMetricsScrapeDuringEviction(t *testing.T) {
	m := NewMetrics()
	st := NewStore(StoreConfig{MaxSessions: 2}, m)
	defer st.Clear()
	sys := core.Example()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, err := st.Create(sys, core.Direct, 0, time.Now()); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
	}()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		m.WriteText(io.Discard)
	}
	if got := m.Counter("diagnosed_sessions_evicted_total"); got != 38 {
		t.Fatalf("evicted counter = %d, want 38", got)
	}
	if n := st.Len(); n != 2 {
		t.Fatalf("store holds %d sessions, want 2", n)
	}
}

// TestConcurrentAppendsOneSession: many goroutines appending to the SAME
// session serialize on its mutex without racing; the alarm count adds up.
func TestConcurrentAppendsOneSession(t *testing.T) {
	_, ts := newTestServer(t, Config{EvalTimeout: time.Minute})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "direct"})
	url := ts.URL + "/v1/sessions/" + sess.ID + "/alarms"

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code := doJSON(t, "POST", url, appendRequest{Alarms: "b@p1"}, nil); code != http.StatusOK {
				t.Errorf("append status %d", code)
			}
		}()
	}
	wg.Wait()

	var info sessionResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if info.Alarms != 8 {
		t.Fatalf("alarms = %d, want 8", info.Alarms)
	}
}
