package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// appendAlarms posts one append and returns the response.
func appendAlarms(t *testing.T, ts *httptest.Server, id, alarms string) appendResponse {
	t.Helper()
	var resp appendResponse
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/alarms", appendRequest{Alarms: alarms}, &resp)
	if code != http.StatusOK {
		t.Fatalf("append %q: status %d", alarms, code)
	}
	return resp
}

func getSession(t *testing.T, ts *httptest.Server, id string) sessionResponse {
	t.Helper()
	var resp sessionResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &resp); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	return resp
}

// waitForFile polls until the path exists (the write-behind persister
// renames complete snapshots into place, so existence means complete).
func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot %s never appeared", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistRestartEquivalence is the serve half of the checkpoint
// subsystem's acceptance: a session persisted by graceful drain and
// restored by a new server must continue exactly — same sequence, same
// diagnoses, and for the warm dQSQ engine the same cumulative derived
// and message counts as an uninterrupted session.
func TestPersistRestartEquivalence(t *testing.T) {
	for _, engine := range []string{"dqsq", "naive"} {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			net := exampleNetText(t)

			// Uninterrupted reference session on a throwaway server.
			_, refTS := newTestServer(t, Config{})
			ref := createSession(t, refTS, createRequest{Net: net, Engine: engine})
			var want appendResponse
			for _, a := range quickstartAlarms {
				want = appendAlarms(t, refTS, ref.ID, a)
			}

			// Server A: two appends, then a graceful drain.
			a := NewServer(Config{SweepEvery: -1, DataDir: dir})
			tsA := httptest.NewServer(a)
			sess := createSession(t, tsA, createRequest{Net: net, Engine: engine})
			for _, al := range quickstartAlarms[:2] {
				appendAlarms(t, tsA, sess.ID, al)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := a.Shutdown(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			tsA.Close()

			// Server B restores the session and finishes the sequence.
			b, tsB := newTestServer(t, Config{DataDir: dir})
			if got := b.Metrics().Counter("snapshot_restore_total"); got != 1 {
				t.Fatalf("snapshot_restore_total = %d, want 1", got)
			}
			st := getSession(t, tsB, sess.ID)
			if st.Alarms != 2 {
				t.Fatalf("restored session has %d alarms, want 2", st.Alarms)
			}
			if st.SnapshotAgeSeconds == nil {
				t.Fatal("restored session reports no snapshot age")
			}
			got := appendAlarms(t, tsB, sess.ID, quickstartAlarms[2])
			if !reflect.DeepEqual(got.Report.Diagnoses, want.Report.Diagnoses) {
				t.Fatalf("diagnoses diverge after restart:\ngot  %v\nwant %v",
					got.Report.Diagnoses, want.Report.Diagnoses)
			}
			if got.Alarms != want.Alarms {
				t.Fatalf("alarms = %d, want %d", got.Alarms, want.Alarms)
			}
			if engine == "dqsq" {
				if got.Report.Derived != want.Report.Derived || got.Report.Messages != want.Report.Messages {
					t.Fatalf("warm counters diverge after restart: got %d derived/%d messages, want %d/%d",
						got.Report.Derived, got.Report.Messages, want.Report.Derived, want.Report.Messages)
				}
			}
		})
	}
}

// TestPersistWriteBehind checks the durability a kill -9 relies on: an
// append's snapshot reaches disk without any shutdown, and the file
// decodes back to the session's state.
func TestPersistWriteBehind(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	appendAlarms(t, ts, sess.ID, "b@p1 a@p2")

	path := filepath.Join(dir, sess.ID+snapshotExt)
	waitForFile(t, path)
	restored, err := LoadSessionFile(path, nil)
	if err != nil {
		t.Fatalf("write-behind snapshot does not decode: %v", err)
	}
	if restored.ID != sess.ID || restored.alarms != 2 {
		t.Fatalf("write-behind snapshot holds id=%s alarms=%d, want %s/2", restored.ID, restored.alarms, sess.ID)
	}
	if n := s.Metrics().Counter("snapshot_bytes_total"); n <= 0 {
		t.Fatalf("snapshot_bytes_total = %d, want > 0", n)
	}
	// The session now advertises how stale its snapshot is.
	if st := getSession(t, ts, sess.ID); st.SnapshotAgeSeconds == nil {
		t.Fatal("session reports no snapshot age after write-behind persist")
	}
}

// TestPersistDeleteRemovesFile: a deleted session must stay gone across
// a restart, so DELETE also removes its snapshot.
func TestPersistDeleteRemovesFile(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t)})
	appendAlarms(t, ts, sess.ID, "b@p1")
	path := filepath.Join(dir, sess.ID+snapshotExt)
	waitForFile(t, path)

	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot %s still present after DELETE", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistExhaustionSurvivesRestart: an append that exhausts the
// session persists the exhaustion, so a restart does not resurrect a
// poisoned warm engine as healthy.
func TestPersistExhaustionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := NewServer(Config{SweepEvery: -1, DataDir: dir})
	tsA := httptest.NewServer(a)
	sess := createSession(t, tsA, createRequest{Net: exampleNetText(t), MaxFacts: 8})
	var errResp errorResponse
	if code := doJSON(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/alarms",
		appendRequest{Alarms: "b@p1 a@p2 c@p1"}, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("append under tiny budget: status %d, want 429", code)
	}
	path := filepath.Join(dir, sess.ID+snapshotExt)
	waitForFile(t, path)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsA.Close()

	_, tsB := newTestServer(t, Config{DataDir: dir})
	st := getSession(t, tsB, sess.ID)
	if !st.Exhausted {
		t.Fatal("restored session lost its exhaustion flag")
	}
	if code := doJSON(t, "POST", tsB.URL+"/v1/sessions/"+sess.ID+"/alarms",
		appendRequest{Alarms: "b@p1"}, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("append on restored exhausted session: status %d, want 429", code)
	}
}

// TestRestoreSkipsCorrupt: corrupt snapshot files are logged and
// skipped; the server still starts and serves.
func TestRestoreSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "garbage.dsnp"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "truncated.dsnp"), []byte("DSNP"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{DataDir: dir})
	if n := s.Store().Len(); n != 0 {
		t.Fatalf("restored %d sessions from garbage", n)
	}
	if got := s.Metrics().Counter("snapshot_restore_total"); got != 0 {
		t.Fatalf("snapshot_restore_total = %d, want 0", got)
	}
	// Server is healthy despite the bad files.
	createSession(t, ts, createRequest{Net: exampleNetText(t)})
}

// TestDrainRetryAfter: the 503s served while draining carry Retry-After
// so clients know to retry against the restarted instance.
func TestDrainRetryAfter(t *testing.T) {
	s := NewServer(Config{SweepEvery: -1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ method, path string }{
		{"POST", "/v1/sessions"},
		{"GET", "/healthz"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while draining: status %d, want 503", tc.method, tc.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s while draining: no Retry-After header", tc.method, tc.path)
		}
	}
}
