package serve

// Replication adapters: the thin surface internal/repl needs to ship
// this server's durable state to a follower, and for a follower to
// apply the stream through the very same code paths boot recovery
// uses. A primary's Dump is every live session freshly encoded (the
// same .dsnp container the persister writes) plus the WAL position to
// stream from; a follower's Apply mirrors each record into its own log
// and runs applyWALRecord — so at every acked sequence the follower's
// store is exactly what the primary would recover to.

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/repl"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// ReplEnabled reports whether the server can take part in replication
// (it needs the write-ahead log, i.e. a DataDir).
func (s *Server) ReplEnabled() bool { return s.wal != nil }

// WALLog exposes the underlying log for repl.NewPrimary.
func (s *Server) WALLog() *wal.Log {
	if s.wal == nil {
		return nil
	}
	return s.wal.log
}

// ReplSource adapts the server for the shipping (primary) side.
func (s *Server) ReplSource() repl.Source { return replSource{s} }

// ReplApplier adapts the server for the applying (follower) side.
func (s *Server) ReplApplier() repl.Applier { return replApplier{s} }

type replSource struct{ s *Server }

// Dump encodes every live session and names the WAL sequence the
// follower must stream from. The resume point is captured BEFORE the
// sessions are encoded: session walSeq marks only ever grow, so every
// record a snapshot taken later does not cover is at or above the
// resume point — captured the other way around, a concurrent
// write-behind snapshot could compact records out from between the
// encoded state and the stream start, losing them silently.
func (r replSource) Dump() ([]repl.Snapshot, uint64, error) {
	s := r.s
	if s.wal == nil {
		return nil, 0, errors.New("serve: replication needs a WAL")
	}
	resume := s.wal.log.FirstSeq()
	if resume == 0 {
		resume = s.wal.log.LastSeq() + 1
	}
	var snaps []repl.Snapshot
	for _, sess := range s.store.Sessions() {
		f := snapshot.New()
		if _, err := sess.EncodeSnapshot(f); err != nil {
			if errors.Is(err, ErrClosed) {
				continue // evicted mid-dump; its delete intent rides the stream
			}
			return nil, 0, fmt.Errorf("serve: dump of session %s: %w", sess.ID, err)
		}
		snaps = append(snaps, repl.Snapshot{ID: sess.ID, Data: f.Bytes()})
	}
	return snaps, resume, nil
}

type replApplier struct{ s *Server }

// LastApplied reports the follower's local log position plus the CRC
// of the record there, which the primary verifies before resuming —
// the check that catches a divergent history (the follower applied a
// record a crashed primary lost before fsync).
func (r replApplier) LastApplied() (uint64, uint32) {
	l := r.s.wal.log
	last := l.LastSeq()
	if last == 0 {
		return 0, 0
	}
	var crc uint32
	err := l.ReadRange(last, last, func(_ uint64, payload []byte) error {
		crc = crc32.ChecksumIEEE(payload)
		return nil
	})
	if err != nil {
		// Right after a resync the position is known but the record is not
		// locally held (SkipTo left the log empty); CRC 0 makes the primary
		// choose a fresh ship, which is the safe answer.
		return last, 0
	}
	return last, crc
}

// Apply mirrors one shipped record into the local log — the follower's
// own durability, so its next boot recovers without a primary — and
// applies it through the shared boot-replay path. The local log
// assigns the same sequence the primary did (Resync positioned it and
// sequences are dense), which Apply asserts.
func (r replApplier) Apply(seq uint64, payload []byte) error {
	s := r.s
	got, err := s.wal.log.Append(payload)
	if err != nil {
		return err
	}
	if got != seq {
		return fmt.Errorf("serve: local wal assigned seq %d, stream says %d", got, seq)
	}
	sess, _ := s.applyWALRecord(seq, payload)
	if sess != nil && s.persist != nil {
		s.persist.markDirty(sess)
	}
	return nil
}

// Resync replaces the whole local state with a shipped dump: every
// live session (and its snapshot file) goes, the local log repositions
// at the primary's resume sequence, and the shipped sessions are
// adopted and scheduled for their own write-behind snapshots.
func (r replApplier) Resync(snaps []repl.Snapshot, resume uint64) error {
	s := r.s
	for _, sess := range s.store.Sessions() {
		s.store.Delete(sess.ID) // enqueues the file's removal too
	}
	s.wal.reset()
	if err := s.wal.log.SkipTo(resume); err != nil {
		return err
	}
	adopted := 0
	for _, sn := range snaps {
		o, err := snapshot.Open(sn.Data)
		if err != nil {
			return fmt.Errorf("serve: shipped session %s: %w", sn.ID, err)
		}
		sess, err := decodeSession(o, s.metrics)
		if err != nil {
			return fmt.Errorf("serve: shipped session %s: %w", sn.ID, err)
		}
		if sess.ID != sn.ID {
			return fmt.Errorf("serve: shipped session id %q decodes as %q", sn.ID, sess.ID)
		}
		if err := s.store.Adopt(sess); err != nil {
			// Table or budget limits below the primary's: serve what fits
			// rather than wedging the stream (the same policy boot restore
			// applies to a too-large snapshot dir).
			s.log.Warn("repl: shipped session not adopted", "session", sn.ID, "err", err)
			continue
		}
		if s.persist != nil {
			s.persist.markDirty(sess)
		}
		adopted++
	}
	s.log.Info("repl: table replaced from snapshot ship", "sessions", adopted, "resume", resume)
	return nil
}
