package serve

// Session-pool acceptance at the serve layer, over an in-process mesh:
// a pooled server must be observably identical to a local one — same
// status codes, byte-identical bodies (after scrubbing the fields that
// legitimately differ: IDs, timestamps, elapsed wall time) — including
// across worker death and cooperative drain.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/transport"
)

// startPoolWorker brings up one pool worker over the mesh, backed by its
// own session store.
func startPoolWorker(t *testing.T, mesh *transport.Mesh, name string, cfg StoreConfig) *pool.Worker {
	t.Helper()
	node := mesh.Node(name)
	w := pool.NewWorker(pool.WorkerConfig{
		Transport: node,
		Backend:   NewPoolBackend(NewStore(cfg, nil), nil),
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.Close()
		node.Close() //nolint:errcheck
	})
	return w
}

// newPooledPair builds a pooled server (frontend + workers over a mesh)
// and a plain local server with the same store defaults, so responses
// can be compared request by request.
func newPooledPair(t *testing.T, workerCfg StoreConfig, poolCfg pool.Config, workerNames ...string) (p *pool.Pool, pooled, local *httptest.Server, workers map[string]*pool.Worker) {
	t.Helper()
	mesh := transport.NewMesh()
	workers = make(map[string]*pool.Worker, len(workerNames))
	for _, name := range workerNames {
		workers[name] = startPoolWorker(t, mesh, name, workerCfg)
	}
	poolCfg.Transport = mesh.Node("fe")
	poolCfg.Workers = workerNames
	if poolCfg.ProbeEvery == 0 {
		poolCfg.ProbeEvery = 50 * time.Millisecond
	}
	pooledSrv, pooledTS := newTestServer(t, Config{})
	poolCfg.Metrics = pooledSrv.Metrics()
	var err error
	p, err = pool.New(poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	pooledSrv.SetPool(p)
	_, localTS := newTestServer(t, Config{})
	return p, pooledTS, localTS, workers
}

// rawDo issues the request and returns status plus the exact body bytes.
func rawDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

var (
	scrubElapsed = regexp.MustCompile(`"elapsed_ms": [0-9eE.+-]+`)
	scrubID      = regexp.MustCompile(`"id": "[^"]*"`)
	scrubTimes   = regexp.MustCompile(`"(created|last_used)": "[^"]*"`)
)

// scrub blanks the legitimately-nondeterministic fields; everything else
// must match byte for byte.
func scrub(body string) string {
	body = scrubElapsed.ReplaceAllString(body, `"elapsed_ms": X`)
	body = scrubID.ReplaceAllString(body, `"id": "X"`)
	body = scrubTimes.ReplaceAllString(body, `"$1": "X"`)
	return body
}

var sessIDRe = regexp.MustCompile(`"id": "([^"]*)"`)

func extractID(t *testing.T, body string) string {
	t.Helper()
	m := sessIDRe.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no session id in %q", body)
	}
	return m[1]
}

// TestPoolEquivalence is the tentpole's correctness bar: for every
// engine, a session served through the pool answers create, append and
// get with the same status codes and byte-identical bodies as a local
// session fed the same requests.
func TestPoolEquivalence(t *testing.T) {
	_, pooled, local, _ := newPooledPair(t, StoreConfig{}, pool.Config{}, "w1", "w2")

	netText := exampleNetText(t)
	netJSON, err := jsonString(netText)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"dqsq", "direct", "product", "naive", ""} {
		createBody := `{"net": ` + netJSON + `, "engine": "` + engine + `"}`
		if engine == "" {
			createBody = `{"net": ` + netJSON + `}`
		}
		pCode, pBody := rawDo(t, "POST", pooled.URL+"/v1/sessions", createBody)
		lCode, lBody := rawDo(t, "POST", local.URL+"/v1/sessions", createBody)
		if pCode != http.StatusCreated || lCode != http.StatusCreated {
			t.Fatalf("engine %q: create status pooled %d local %d\npooled: %s", engine, pCode, lCode, pBody)
		}
		if scrub(pBody) != scrub(lBody) {
			t.Fatalf("engine %q: create bodies diverge\npooled: %s\nlocal:  %s", engine, scrub(pBody), scrub(lBody))
		}
		pID, lID := extractID(t, pBody), extractID(t, lBody)

		for _, alarm := range quickstartAlarms {
			pCode, pBody = rawDo(t, "POST", pooled.URL+"/v1/sessions/"+pID+"/alarms", `{"alarms": "`+alarm+`"}`)
			lCode, lBody = rawDo(t, "POST", local.URL+"/v1/sessions/"+lID+"/alarms", `{"alarms": "`+alarm+`"}`)
			if pCode != http.StatusOK || lCode != http.StatusOK {
				t.Fatalf("engine %q append %q: status pooled %d local %d\npooled: %s", engine, alarm, pCode, lCode, pBody)
			}
			if scrub(pBody) != scrub(lBody) {
				t.Fatalf("engine %q append %q: bodies diverge\npooled: %s\nlocal:  %s", engine, alarm, scrub(pBody), scrub(lBody))
			}
		}

		pCode, pBody = rawDo(t, "GET", pooled.URL+"/v1/sessions/"+pID, "")
		lCode, lBody = rawDo(t, "GET", local.URL+"/v1/sessions/"+lID, "")
		if pCode != http.StatusOK || lCode != http.StatusOK {
			t.Fatalf("engine %q: get status pooled %d local %d", engine, pCode, lCode)
		}
		if scrub(pBody) != scrub(lBody) {
			t.Fatalf("engine %q: session bodies diverge\npooled: %s\nlocal:  %s", engine, scrub(pBody), scrub(lBody))
		}

		// Client-fault and lifecycle statuses line up too.
		if code, _ := rawDo(t, "POST", pooled.URL+"/v1/sessions/"+pID+"/alarms", `{"alarms": "b@nowhere"}`); code != http.StatusBadRequest {
			t.Fatalf("engine %q: pooled unknown-peer append: status %d, want 400", engine, code)
		}
		if code, _ := rawDo(t, "DELETE", pooled.URL+"/v1/sessions/"+pID, ""); code != http.StatusNoContent {
			t.Fatalf("engine %q: pooled delete: status %d", engine, code)
		}
		if code, _ := rawDo(t, "GET", pooled.URL+"/v1/sessions/"+pID, ""); code != http.StatusNotFound {
			t.Fatalf("engine %q: pooled get after delete: status %d, want 404", engine, code)
		}
		if code, _ := rawDo(t, "DELETE", local.URL+"/v1/sessions/"+lID, ""); code != http.StatusNoContent {
			t.Fatalf("engine %q: local delete: status %d", engine, code)
		}
	}
}

// jsonString encodes s as a JSON string literal.
func jsonString(s string) (string, error) {
	b, err := json.Marshal(s)
	return string(b), err
}

// TestPoolWorkerKillEquivalence kills the worker homing a session
// mid-stream (its transport goes away, like a kill -9) and checks the
// pool re-materializes the session elsewhere from the journal with zero
// acknowledged-append loss: the remaining appends succeed and the final
// state is byte-identical to an uninterrupted local run.
func TestPoolWorkerKillEquivalence(t *testing.T) {
	mesh := transport.NewMesh()
	for _, name := range []string{"w1", "w2"} {
		startPoolWorker(t, mesh, name, StoreConfig{})
	}
	pooledSrv, pooled := newTestServer(t, Config{})
	p, err := pool.New(pool.Config{
		Transport:  mesh.Node("fe"),
		Workers:    []string{"w1", "w2"},
		Metrics:    pooledSrv.Metrics(),
		ProbeEvery: 50 * time.Millisecond,
		ShipEvery:  -1, // force the journal-replay path, no checkpoint shortcut
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	pooledSrv.SetPool(p)
	_, local := newTestServer(t, Config{})

	netText := exampleNetText(t)
	netJSON, err := jsonString(netText)
	if err != nil {
		t.Fatal(err)
	}
	createBody := `{"net": ` + netJSON + `, "engine": "dqsq"}`
	_, pBody := rawDo(t, "POST", pooled.URL+"/v1/sessions", createBody)
	_, lBody := rawDo(t, "POST", local.URL+"/v1/sessions", createBody)
	pID, lID := extractID(t, pBody), extractID(t, lBody)

	appendBoth := func(alarm string) (string, string) {
		t.Helper()
		pCode, pb := rawDo(t, "POST", pooled.URL+"/v1/sessions/"+pID+"/alarms", `{"alarms": "`+alarm+`"}`)
		lCode, lb := rawDo(t, "POST", local.URL+"/v1/sessions/"+lID+"/alarms", `{"alarms": "`+alarm+`"}`)
		if pCode != http.StatusOK || lCode != http.StatusOK {
			t.Fatalf("append %q: status pooled %d local %d\npooled: %s", alarm, pCode, lCode, pb)
		}
		return pb, lb
	}

	pb, lb := appendBoth(quickstartAlarms[0])
	if scrub(pb) != scrub(lb) {
		t.Fatalf("pre-kill append diverges\npooled: %s\nlocal:  %s", scrub(pb), scrub(lb))
	}

	victim, ok := p.SessionWorker(pID)
	if !ok {
		t.Fatalf("session %s unknown to the pool", pID)
	}
	mesh.Node(victim).Close() //nolint:errcheck // the kill under test

	for _, alarm := range quickstartAlarms[1:] {
		pb, lb = appendBoth(alarm)
		if scrub(pb) != scrub(lb) {
			t.Fatalf("post-kill append %q diverges\npooled: %s\nlocal:  %s", alarm, scrub(pb), scrub(lb))
		}
	}

	if now, _ := p.SessionWorker(pID); now == victim {
		t.Fatalf("session still placed on the killed worker %s", victim)
	}
	_, pBody = rawDo(t, "GET", pooled.URL+"/v1/sessions/"+pID, "")
	_, lBody = rawDo(t, "GET", local.URL+"/v1/sessions/"+lID, "")
	if scrub(pBody) != scrub(lBody) {
		t.Fatalf("post-kill session state diverges\npooled: %s\nlocal:  %s", scrub(pBody), scrub(lBody))
	}
	if n := metricValue(t, pooled, "pool_migrations_total"); n < 1 {
		t.Fatalf("pool_migrations_total = %d, want >= 1", n)
	}
}

// TestPoolDrainMigration drains the worker homing a session and waits
// for the pool to migrate it by checkpoint: placement moves off the
// drainer without any failed request, and the session keeps answering
// with state identical to a local run.
func TestPoolDrainMigration(t *testing.T) {
	p, pooled, local, workers := newPooledPair(t, StoreConfig{}, pool.Config{}, "w1", "w2")

	netText := exampleNetText(t)
	netJSON, err := jsonString(netText)
	if err != nil {
		t.Fatal(err)
	}
	createBody := `{"net": ` + netJSON + `, "engine": "dqsq"}`
	_, pBody := rawDo(t, "POST", pooled.URL+"/v1/sessions", createBody)
	_, lBody := rawDo(t, "POST", local.URL+"/v1/sessions", createBody)
	pID, lID := extractID(t, pBody), extractID(t, lBody)

	if code, _ := rawDo(t, "POST", pooled.URL+"/v1/sessions/"+pID+"/alarms", `{"alarms": "`+quickstartAlarms[0]+`"}`); code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}
	rawDo(t, "POST", local.URL+"/v1/sessions/"+lID+"/alarms", `{"alarms": "`+quickstartAlarms[0]+`"}`)

	drainer, ok := p.SessionWorker(pID)
	if !ok {
		t.Fatalf("session %s unknown to the pool", pID)
	}
	workers[drainer].SetDraining(true)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if now, _ := p.SessionWorker(pID); now != drainer {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never migrated off draining worker %s (states %v)", drainer, p.WorkerStates())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state := p.WorkerStates()[drainer]; state != pool.StateDraining {
		t.Fatalf("drainer state %q, want %q", state, pool.StateDraining)
	}

	for _, alarm := range quickstartAlarms[1:] {
		pCode, pb := rawDo(t, "POST", pooled.URL+"/v1/sessions/"+pID+"/alarms", `{"alarms": "`+alarm+`"}`)
		lCode, lb := rawDo(t, "POST", local.URL+"/v1/sessions/"+lID+"/alarms", `{"alarms": "`+alarm+`"}`)
		if pCode != http.StatusOK || lCode != http.StatusOK {
			t.Fatalf("post-drain append %q: status pooled %d local %d", alarm, pCode, lCode)
		}
		if scrub(pb) != scrub(lb) {
			t.Fatalf("post-drain append %q diverges\npooled: %s\nlocal:  %s", alarm, scrub(pb), scrub(lb))
		}
	}
	_, pBody = rawDo(t, "GET", pooled.URL+"/v1/sessions/"+pID, "")
	_, lBody = rawDo(t, "GET", local.URL+"/v1/sessions/"+lID, "")
	if scrub(pBody) != scrub(lBody) {
		t.Fatalf("post-drain session state diverges\npooled: %s\nlocal:  %s", scrub(pBody), scrub(lBody))
	}
}

// TestPoolBackpressure: when every worker refuses admission the pooled
// create answers 503 with a Retry-After hint instead of hanging or
// five-hundreding.
func TestPoolBackpressure(t *testing.T) {
	_, pooled, _, _ := newPooledPair(t, StoreConfig{MaxSessions: 1}, pool.Config{}, "w1", "w2")

	netText := exampleNetText(t)
	netJSON, err := jsonString(netText)
	if err != nil {
		t.Fatal(err)
	}
	createBody := `{"net": ` + netJSON + `}`
	for i := 0; i < 2; i++ {
		if code, body := rawDo(t, "POST", pooled.URL+"/v1/sessions", createBody); code != http.StatusCreated {
			t.Fatalf("create %d: status %d: %s", i, code, body)
		}
	}
	req, err := http.NewRequest("POST", pooled.URL+"/v1/sessions", strings.NewReader(createBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated create: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated create: no Retry-After header")
	}
}
