package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/wal"
)

// crashServer builds a server whose write-behind snapshots never land
// (SnapshotDelay is huge): every acknowledged request exists only in the
// WAL. Abandoning it without Shutdown simulates a kill -9 — in-process,
// file state is exactly what the OS already has.
func crashServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		DataDir:       dir,
		SweepEvery:    -1,
		SnapshotDelay: time.Hour,
		Fsync:         wal.SyncNever, // durability against process death needs no fsync
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// reportEssence strips the timing from a report: everything that must be
// identical between a replayed session and an uninterrupted one.
type reportEssence struct {
	diagnoses  [][]string
	derived    int
	messages   int
	transFacts int
	placeFacts int
}

func essence(t *testing.T, rep *reportJSON) reportEssence {
	t.Helper()
	if rep == nil {
		t.Fatal("session has no report")
	}
	return reportEssence{
		diagnoses:  rep.Diagnoses,
		derived:    rep.Derived,
		messages:   rep.Messages,
		transFacts: rep.TransFacts,
		placeFacts: rep.PlaceFacts,
	}
}

// TestWALReplayAfterCrash is the recovery invariant: a server killed with
// acknowledged appends that never reached a snapshot must reproduce, from
// the WAL alone, exactly the state an uninterrupted server would hold —
// same diagnoses, same derived-fact and message counts, same sequence.
func TestWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	_, ts := crashServer(t, dir)
	sess := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	for _, a := range quickstartAlarms {
		appendAlarms(t, ts, sess.ID, a)
	}
	before := getSession(t, ts, sess.ID)
	if n := metricValue(t, ts, "wal_appends_total"); n < 4 { // 1 create + 3 appends
		t.Fatalf("wal_appends_total = %d before crash, want >= 4", n)
	}
	ts.Close() // crash: no Shutdown, no drain, no snapshot

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	after := getSession(t, ts2, sess.ID)
	if after.Alarms != before.Alarms || after.Seq != before.Seq {
		t.Fatalf("replayed session: alarms=%d seq=%q, want alarms=%d seq=%q",
			after.Alarms, after.Seq, before.Alarms, before.Seq)
	}
	if got, want := essence(t, after.Report), essence(t, before.Report); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed report diverged:\n got %+v\nwant %+v", got, want)
	}
	if n := metricValue(t, ts2, "wal_replay_records_total"); n < 4 {
		t.Fatalf("wal_replay_records_total = %d, want >= 4", n)
	}

	// The replayed session must stay fully usable: same engine, warm state,
	// and a control run over the whole sequence agrees with it.
	appendAlarms(t, ts2, sess.ID, "b@p1")

	_, tsCtl := newTestServer(t, Config{})
	ctl := createSession(t, tsCtl, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	for _, a := range append(append([]string{}, quickstartAlarms...), "b@p1") {
		appendAlarms(t, tsCtl, ctl.ID, a)
	}
	got := getSession(t, ts2, sess.ID)
	want := getSession(t, tsCtl, ctl.ID)
	if got.Seq != want.Seq || !reflect.DeepEqual(essence(t, got.Report), essence(t, want.Report)) {
		t.Fatalf("post-replay append diverged from control:\n got seq=%q %+v\nwant seq=%q %+v",
			got.Seq, essence(t, got.Report), want.Seq, essence(t, want.Report))
	}
}

// TestWALDeleteAfterCrash: a delete acknowledged before the crash must
// hold across it, while the sibling session survives intact.
func TestWALDeleteAfterCrash(t *testing.T) {
	dir := t.TempDir()
	_, ts := crashServer(t, dir)
	doomed := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	kept := createSession(t, ts, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	appendAlarms(t, ts, doomed.ID, "b@p1")
	appendAlarms(t, ts, kept.ID, "b@p1 a@p2")
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+doomed.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	ts.Close() // crash

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	if code := doJSON(t, "GET", ts2.URL+"/v1/sessions/"+doomed.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: GET status %d", code)
	}
	if got := getSession(t, ts2, kept.ID); got.Alarms != 2 {
		t.Fatalf("kept session replayed %d alarms, want 2", got.Alarms)
	}
}

// TestWALDeletePreventsResurrection targets the nastiest window: the
// session HAS a snapshot file, the delete was acknowledged, and the crash
// lands before the file's removal. The logged delete intent must beat the
// stale snapshot on restart.
func TestWALDeletePreventsResurrection(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: a clean server persists the session to a snapshot file.
	s1 := NewServer(Config{DataDir: dir, SweepEvery: -1})
	ts1 := httptest.NewServer(s1)
	sess := createSession(t, ts1, createRequest{Net: exampleNetText(t), Engine: "dqsq"})
	appendAlarms(t, ts1, sess.ID, "b@p1")
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil { // drain writes the snapshot
		t.Fatal(err)
	}

	// Phase 2: restart, delete, crash before the stalled file removal.
	_, ts2 := crashServer(t, dir)
	if code := doJSON(t, "DELETE", ts2.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	ts2.Close() // crash: snapshot file still on disk

	// Phase 3: the restore loads the stale snapshot, then the WAL's delete
	// record must kill it again.
	_, ts3 := newTestServer(t, Config{DataDir: dir})
	if code := doJSON(t, "GET", ts3.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("stale snapshot resurrected a deleted session: GET status %d", code)
	}
}

// TestServerWALCompaction drives the coverage bookkeeping directly over a
// tiny-segment log: records covered by landed snapshots are truncated
// away, records still pending (or guarding an unapplied delete) survive.
func TestServerWALCompaction(t *testing.T) {
	log, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 32, Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	w := newServerWAL(log)

	var aSeqs, bSeqs []uint64
	for i := 0; i < 4; i++ {
		sa, err := w.logAppend("a", "b@p1")
		if err != nil {
			t.Fatal(err)
		}
		aSeqs = append(aSeqs, sa)
		sb, err := w.logAppend("b", "a@p2")
		if err != nil {
			t.Fatal(err)
		}
		bSeqs = append(bSeqs, sb)
	}

	// Session a fully covered; b only through its second record.
	w.covered("a", aSeqs[3])
	w.covered("b", bSeqs[1])
	w.compact()
	first := firstSeq(t, log)
	if first == 0 || first > bSeqs[2] {
		t.Fatalf("compaction dropped uncovered record: first surviving seq %d, want <= %d", first, bSeqs[2])
	}
	if first <= aSeqs[1] {
		t.Fatalf("compaction kept fully covered prefix: first surviving seq %d", first)
	}

	// A delete intent supersedes the session's earlier records (replay
	// only needs the delete), but itself pins the floor until the file
	// removal is applied.
	dSeq, err := w.logDelete("b")
	if err != nil {
		t.Fatal(err)
	}
	w.compact()
	if f := firstSeq(t, log); f == 0 || f > dSeq {
		t.Fatalf("delete intent did not pin compaction: first surviving seq %d, want <= %d", f, dSeq)
	}
	w.removeApplied("b")
	w.compact()
	// Everything is now compactable; only the active segment's records may
	// survive (Truncate drops whole sealed segments, never the one still
	// being appended to).
	if f := firstSeq(t, log); f != 0 && f < bSeqs[3] {
		t.Fatalf("full coverage did not compact: first surviving seq %d, want >= %d", f, bSeqs[3])
	}
}

func firstSeq(t *testing.T, log *wal.Log) uint64 {
	t.Helper()
	var first uint64
	err := log.Replay(1, func(seq uint64, payload []byte) error {
		if first == 0 {
			first = seq
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return first
}
