// Package serve is the streaming diagnosis service: a concurrent session
// manager over core.Incremental handles (warm online dQSQ sessions, per
// the paper's Remark 2), wrapped in a stdlib-only HTTP/JSON API. It is
// the serving substrate of the production roadmap: bounded session
// tables with LRU eviction and TTL sweeping, per-session and global fact
// budgets with 429/503 load-shedding, request timeouts, graceful
// shutdown draining in-flight evaluations, and a plain-text /metrics
// endpoint exporting the counters the diagnosis engines already carry.
package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds, in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30}

const numBuckets = 8 // len(latencyBuckets); arrays need a constant

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [numBuckets + 1]int64 // one per bucket, last is +Inf
	sum    float64
	total  int64
}

// Metrics is a concurrency-safe registry of counters, gauges and latency
// histograms, rendered in the Prometheus text exposition format (plain
// counters and gauges; histograms as _bucket/_sum/_count).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]func() int64
	floats   map[string]func() float64 // live float gauges (GaugeFloat)
	levels   map[string]int64          // settable gauges (obs.Registry.SetGauge)
	hists    map[string]*histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]func() int64),
		floats:   make(map[string]func() float64),
		levels:   make(map[string]int64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments a counter.
func (m *Metrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter reads a counter's current value.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge registers a live gauge, sampled at render time.
func (m *Metrics) Gauge(name string, read func() int64) {
	m.mu.Lock()
	m.gauges[name] = read
	m.mu.Unlock()
}

// GaugeFloat registers a live float-valued gauge, sampled at render time
// and rendered with %g (for seconds-denominated series like GC pause
// totals).
func (m *Metrics) GaugeFloat(name string, read func() float64) {
	m.mu.Lock()
	m.floats[name] = read
	m.mu.Unlock()
}

// SetGauge records an absolute level, rendered like a gauge. Together
// with Add and Observe it makes *Metrics an obs.Registry, so an
// obs.MetricsSink can fold engine trace events (derivation counters,
// unfolding-node levels, append-latency spans) into this registry.
func (m *Metrics) SetGauge(name string, value int64) {
	m.mu.Lock()
	m.levels[name] = value
	m.mu.Unlock()
}

// Observe records one duration into the named histogram.
func (m *Metrics) Observe(name string, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histogram{}
		m.hists[name] = h
	}
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += secs
	h.total++
	m.mu.Unlock()
}

// WriteText renders every metric, sorted by name, in the text format.
// Gauge readers run AFTER m.mu is released: gauges reach into other
// subsystems (e.g. the session store's mutex), and those subsystems call
// Add/Observe — sampling them under m.mu would order the two locks both
// ways and deadlock a scrape against a concurrent store operation.
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	counters := make(map[string]int64, len(m.counters))
	for n, v := range m.counters {
		counters[n] = v
	}
	gauges := make(map[string]func() int64, len(m.gauges))
	for n, read := range m.gauges {
		gauges[n] = read
	}
	floats := make(map[string]func() float64, len(m.floats))
	for n, read := range m.floats {
		floats[n] = read
	}
	levels := make(map[string]int64, len(m.levels))
	for n, v := range m.levels {
		levels[n] = v
	}
	hists := make(map[string]histogram, len(m.hists))
	for n, h := range m.hists {
		hists[n] = *h
	}
	m.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(floats)+len(levels))
	for n := range counters {
		names = append(names, n)
	}
	for n := range gauges {
		names = append(names, n)
	}
	for n := range floats {
		if _, dup := gauges[n]; dup {
			continue
		}
		names = append(names, n)
	}
	for n := range levels {
		if _, dup := counters[n]; dup {
			continue
		}
		if _, dup := gauges[n]; dup {
			continue
		}
		if _, dup := floats[n]; dup {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if read, ok := gauges[n]; ok {
			fmt.Fprintf(w, "%s %d\n", n, read())
			continue
		}
		if read, ok := floats[n]; ok {
			fmt.Fprintf(w, "%s %g\n", n, read())
			continue
		}
		if v, ok := counters[n]; ok {
			fmt.Fprintf(w, "%s %d\n", n, v)
			continue
		}
		fmt.Fprintf(w, "%s %d\n", n, levels[n])
	}

	hnames := make([]string, 0, len(hists))
	for n := range hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := hists[n]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %g\n", n, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.total)
	}
}

// RegisterRuntimeGauges adds the Go runtime health gauges every /metrics
// surface in the system exports — the server's, peerd's admin endpoint,
// and the samples members ship in cluster telemetry frames: goroutine
// count, live heap bytes, and cumulative GC pause seconds.
func RegisterRuntimeGauges(m *Metrics) {
	m.Gauge("go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	m.Gauge("go_heap_bytes", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
	m.GaugeFloat("go_gc_pause_seconds", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}
